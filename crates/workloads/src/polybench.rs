//! The twelve data-intensive Polybench OpenCL kernels of paper Table 4,
//! plus GEMM (mentioned in the paper's prose list).
//!
//! Each kernel has:
//! * its OpenCL source (a `pub const`, so tests and docs can inspect it),
//! * a paper-scale builder (virtual float matrices — 16,384² elements are
//!   never allocated),
//! * a small-scale real-buffer builder for functional validation, and
//! * a sequential Rust reference implementation used by the tests.

use crate::data;
use crate::BuiltKernel;
use sim::{ArgValue, Memory, NdRange};

// --------------------------------------------------------------------------
// Kernel sources
// --------------------------------------------------------------------------

/// 2-D convolution with a 3x3 stencil (2DCONV). Like the GPU-tuned
/// Polybench OpenCL codes, dimension 0 of the NDRange maps to the
/// *contiguous* array dimension so adjacent lanes coalesce.
pub const CONV2D_SRC: &str = r#"
__kernel void conv2d(__global float* A, __global float* B, int NI, int NJ) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i > 0) && (i < NI - 1) && (j > 0) && (j < NJ - 1)) {
        float c11 = 0.2f;  float c12 = -0.3f; float c13 = 0.4f;
        float c21 = -0.5f; float c22 = 0.6f;  float c23 = -0.7f;
        float c31 = 0.8f;  float c32 = -0.9f; float c33 = 0.1f;
        B[i * NJ + j] =
            c11 * A[(i - 1) * NJ + (j - 1)] + c12 * A[(i - 1) * NJ + j] + c13 * A[(i - 1) * NJ + (j + 1)] +
            c21 * A[i * NJ + (j - 1)]       + c22 * A[i * NJ + j]       + c23 * A[i * NJ + (j + 1)] +
            c31 * A[(i + 1) * NJ + (j - 1)] + c32 * A[(i + 1) * NJ + j] + c33 * A[(i + 1) * NJ + (j + 1)];
    }
}
"#;

/// ATAX kernel 1: `tmp = A x` (row-wise dot products).
pub const ATAX1_SRC: &str = r#"
__kernel void atax1(__global float* A, __global float* x, __global float* tmp, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float s = 0.0f;
        for (int j = 0; j < N; j++) { s = s + A[i * N + j] * x[j]; }
        tmp[i] = s;
    }
}
"#;

/// ATAX kernel 2: `y = Aᵀ tmp` (column-wise walk — lane-coalescable).
pub const ATAX2_SRC: &str = r#"
__kernel void atax2(__global float* A, __global float* tmp, __global float* y, int N) {
    int j = get_global_id(0);
    if (j < N) {
        float s = 0.0f;
        for (int i = 0; i < N; i++) { s = s + A[i * N + j] * tmp[i]; }
        y[j] = s;
    }
}
"#;

/// BiCG sub-kernel 1: `q = A p`.
pub const BICG1_SRC: &str = r#"
__kernel void bicg1(__global float* A, __global float* p, __global float* q, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float s = 0.0f;
        for (int j = 0; j < N; j++) { s = s + A[i * N + j] * p[j]; }
        q[i] = s;
    }
}
"#;

/// BiCG sub-kernel 2: `s = Aᵀ r`.
pub const BICG2_SRC: &str = r#"
__kernel void bicg2(__global float* A, __global float* r, __global float* s, int N) {
    int j = get_global_id(0);
    if (j < N) {
        float acc = 0.0f;
        for (int i = 0; i < N; i++) { acc = acc + A[i * N + j] * r[i]; }
        s[j] = acc;
    }
}
"#;

/// FDTD-2D step 1: update `ey` from `hz` (row-neighbour stencil).
pub const FDTD1_SRC: &str = r#"
__kernel void fdtd1(__global float* ey, __global float* hz, int NX, int NY) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i > 0) && (i < NX) && (j < NY)) {
        ey[i * NY + j] = ey[i * NY + j] - 0.5f * (hz[i * NY + j] - hz[(i - 1) * NY + j]);
    }
}
"#;

/// FDTD-2D step 2: update `ex` from `hz` (column-neighbour stencil).
pub const FDTD2_SRC: &str = r#"
__kernel void fdtd2(__global float* ex, __global float* hz, int NX, int NY) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i < NX) && (j > 0) && (j < NY)) {
        ex[i * NY + j] = ex[i * NY + j] - 0.5f * (hz[i * NY + j] - hz[i * NY + (j - 1)]);
    }
}
"#;

/// FDTD-2D step 3: update `hz` from `ex` and `ey`.
pub const FDTD3_SRC: &str = r#"
__kernel void fdtd3(__global float* ex, __global float* ey, __global float* hz, int NX, int NY) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i < NX - 1) && (j < NY - 1)) {
        hz[i * NY + j] = hz[i * NY + j]
            - 0.7f * (ex[i * NY + (j + 1)] - ex[i * NY + j]
                    + ey[(i + 1) * NY + j] - ey[i * NY + j]);
    }
}
"#;

/// Gesummv: `y = alpha A x + beta B x` — the paper's running example.
pub const GESUMMV_SRC: &str = r#"
__kernel void gesummv(__global float* A, __global float* B, __global float* x,
                      __global float* y, float alpha, float beta, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float t = 0.0f;
        float s = 0.0f;
        for (int j = 0; j < N; j++) {
            t = t + A[i * N + j] * x[j];
            s = s + B[i * N + j] * x[j];
        }
        y[i] = alpha * t + beta * s;
    }
}
"#;

/// MVT kernel 1: `x1 += A y1` (row walk).
pub const MVT1_SRC: &str = r#"
__kernel void mvt1(__global float* A, __global float* x1, __global float* y1, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float s = 0.0f;
        for (int j = 0; j < N; j++) { s = s + A[i * N + j] * y1[j]; }
        x1[i] = x1[i] + s;
    }
}
"#;

/// MVT kernel 2: `x2 += Aᵀ y2` (column walk — the paper's GPU-friendly
/// misprediction case study in Section 9.4).
pub const MVT2_SRC: &str = r#"
__kernel void mvt2(__global float* A, __global float* x2, __global float* y2, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float s = 0.0f;
        for (int j = 0; j < N; j++) { s = s + A[j * N + i] * y2[j]; }
        x2[i] = x2[i] + s;
    }
}
"#;

/// SYR2K: symmetric rank-2k update `C = beta C + alpha (A Bᵀ + B Aᵀ)`.
pub const SYR2K_SRC: &str = r#"
__kernel void syr2k(__global float* A, __global float* B, __global float* C,
                    float alpha, float beta, int N, int M) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i < N) && (j < N)) {
        float s = C[i * N + j] * beta;
        for (int k = 0; k < M; k++) {
            s = s + alpha * A[i * M + k] * B[j * M + k]
                  + alpha * B[i * M + k] * A[j * M + k];
        }
        C[i * N + j] = s;
    }
}
"#;

/// GEMM: `C = alpha A B + beta C` (paper prose; not in the Fig. 13 set).
pub const GEMM_SRC: &str = r#"
__kernel void gemm(__global float* A, __global float* B, __global float* C,
                   float alpha, float beta, int N) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if ((i < N) && (j < N)) {
        float s = C[i * N + j] * beta;
        for (int k = 0; k < N; k++) {
            s = s + alpha * A[i * N + k] * B[k * N + j];
        }
        C[i * N + j] = s;
    }
}
"#;

// --------------------------------------------------------------------------
// Paper-scale builders (virtual matrices)
// --------------------------------------------------------------------------

fn vbuf(mem: &mut Memory, len: usize, seed: u64) -> ArgValue {
    ArgValue::Buffer(mem.alloc_virtual_f32(len, seed))
}

fn rbuf(mem: &mut Memory, data: Vec<f32>) -> ArgValue {
    ArgValue::Buffer(mem.alloc_f32(data))
}

/// 2DCONV on an `n x n` grid.
pub fn conv2d(mem: &mut Memory, n: usize, wg: [usize; 2]) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0x2D01);
    let b = vbuf(mem, n * n, 0x2D02);
    BuiltKernel::from_source(
        "2DCONV",
        CONV2D_SRC,
        vec![a, b, ArgValue::Int(n as i64), ArgValue::Int(n as i64)],
        NdRange::d2([n, n], wg),
    )
}

pub fn atax1(mem: &mut Memory, n: usize, wg: usize) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0xA1);
    let x = rbuf(mem, data::random_f32(n, 0xA2));
    let tmp = rbuf(mem, vec![0.0; n]);
    BuiltKernel::from_source(
        "ATAX1",
        ATAX1_SRC,
        vec![a, x, tmp, ArgValue::Int(n as i64)],
        NdRange::d1(n, wg),
    )
}

pub fn atax2(mem: &mut Memory, n: usize, wg: usize) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0xA3);
    let tmp = rbuf(mem, data::random_f32(n, 0xA4));
    let y = rbuf(mem, vec![0.0; n]);
    BuiltKernel::from_source(
        "ATAX2",
        ATAX2_SRC,
        vec![a, tmp, y, ArgValue::Int(n as i64)],
        NdRange::d1(n, wg),
    )
}

pub fn bicg1(mem: &mut Memory, n: usize, wg: usize) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0xB1);
    let p = rbuf(mem, data::random_f32(n, 0xB2));
    let q = rbuf(mem, vec![0.0; n]);
    BuiltKernel::from_source(
        "BICG1",
        BICG1_SRC,
        vec![a, p, q, ArgValue::Int(n as i64)],
        NdRange::d1(n, wg),
    )
}

pub fn bicg2(mem: &mut Memory, n: usize, wg: usize) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0xB3);
    let r = rbuf(mem, data::random_f32(n, 0xB4));
    let s = rbuf(mem, vec![0.0; n]);
    BuiltKernel::from_source(
        "BICG2",
        BICG2_SRC,
        vec![a, r, s, ArgValue::Int(n as i64)],
        NdRange::d1(n, wg),
    )
}

pub fn fdtd1(mem: &mut Memory, n: usize, wg: [usize; 2]) -> BuiltKernel {
    let ey = vbuf(mem, n * n, 0xF1);
    let hz = vbuf(mem, n * n, 0xF2);
    BuiltKernel::from_source(
        "FDTD1",
        FDTD1_SRC,
        vec![ey, hz, ArgValue::Int(n as i64), ArgValue::Int(n as i64)],
        NdRange::d2([n, n], wg),
    )
}

pub fn fdtd2(mem: &mut Memory, n: usize, wg: [usize; 2]) -> BuiltKernel {
    let ex = vbuf(mem, n * n, 0xF3);
    let hz = vbuf(mem, n * n, 0xF4);
    BuiltKernel::from_source(
        "FDTD2",
        FDTD2_SRC,
        vec![ex, hz, ArgValue::Int(n as i64), ArgValue::Int(n as i64)],
        NdRange::d2([n, n], wg),
    )
}

pub fn fdtd3(mem: &mut Memory, n: usize, wg: [usize; 2]) -> BuiltKernel {
    let ex = vbuf(mem, n * n, 0xF5);
    let ey = vbuf(mem, n * n, 0xF6);
    let hz = vbuf(mem, n * n, 0xF7);
    BuiltKernel::from_source(
        "FDTD3",
        FDTD3_SRC,
        vec![ex, ey, hz, ArgValue::Int(n as i64), ArgValue::Int(n as i64)],
        NdRange::d2([n, n], wg),
    )
}

pub fn gesummv(mem: &mut Memory, n: usize, wg: usize) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0x6A);
    let b = vbuf(mem, n * n, 0x6B);
    let x = rbuf(mem, data::random_f32(n, 0x6C));
    let y = rbuf(mem, vec![0.0; n]);
    BuiltKernel::from_source(
        "Gesummv",
        GESUMMV_SRC,
        vec![
            a,
            b,
            x,
            y,
            ArgValue::Float(1.5),
            ArgValue::Float(1.2),
            ArgValue::Int(n as i64),
        ],
        NdRange::d1(n, wg),
    )
}

pub fn mvt1(mem: &mut Memory, n: usize, wg: usize) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0x71);
    let x1 = rbuf(mem, data::random_f32(n, 0x72));
    let y1 = rbuf(mem, data::random_f32(n, 0x73));
    BuiltKernel::from_source(
        "MVT1",
        MVT1_SRC,
        vec![a, x1, y1, ArgValue::Int(n as i64)],
        NdRange::d1(n, wg),
    )
}

pub fn mvt2(mem: &mut Memory, n: usize, wg: usize) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0x74);
    let x2 = rbuf(mem, data::random_f32(n, 0x75));
    let y2 = rbuf(mem, data::random_f32(n, 0x76));
    BuiltKernel::from_source(
        "MVT2",
        MVT2_SRC,
        vec![a, x2, y2, ArgValue::Int(n as i64)],
        NdRange::d1(n, wg),
    )
}

pub fn syr2k(mem: &mut Memory, n: usize, wg: [usize; 2]) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0x51);
    let b = vbuf(mem, n * n, 0x52);
    let c = vbuf(mem, n * n, 0x53);
    BuiltKernel::from_source(
        "SYR2K",
        SYR2K_SRC,
        vec![
            a,
            b,
            c,
            ArgValue::Float(1.5),
            ArgValue::Float(1.2),
            ArgValue::Int(n as i64),
            ArgValue::Int(n as i64),
        ],
        NdRange::d2([n, n], wg),
    )
}

pub fn gemm(mem: &mut Memory, n: usize, wg: [usize; 2]) -> BuiltKernel {
    let a = vbuf(mem, n * n, 0x91);
    let b = vbuf(mem, n * n, 0x92);
    let c = vbuf(mem, n * n, 0x93);
    BuiltKernel::from_source(
        "GEMM",
        GEMM_SRC,
        vec![
            a,
            b,
            c,
            ArgValue::Float(1.5),
            ArgValue::Float(1.2),
            ArgValue::Int(n as i64),
        ],
        NdRange::d2([n, n], wg),
    )
}

// --------------------------------------------------------------------------
// Rust reference implementations (for validation)
// --------------------------------------------------------------------------

/// Reference Gesummv: `y = alpha A x + beta B x`.
pub fn ref_gesummv(a: &[f32], b: &[f32], x: &[f32], alpha: f32, beta: f32, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let mut t = 0.0f32;
            let mut s = 0.0f32;
            for j in 0..n {
                t += a[i * n + j] * x[j];
                s += b[i * n + j] * x[j];
            }
            alpha * t + beta * s
        })
        .collect()
}

/// Reference ATAX (both kernels): `y = Aᵀ (A x)`.
pub fn ref_atax(a: &[f32], x: &[f32], n: usize) -> (Vec<f32>, Vec<f32>) {
    let tmp: Vec<f32> = (0..n)
        .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
        .collect();
    let y: Vec<f32> = (0..n)
        .map(|j| (0..n).map(|i| a[i * n + j] * tmp[i]).sum())
        .collect();
    (tmp, y)
}

/// Reference MVT2: `x2 + Aᵀ y2`.
pub fn ref_mvt2(a: &[f32], x2: &[f32], y2: &[f32], n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| x2[i] + (0..n).map(|j| a[j * n + i] * y2[j]).sum::<f32>())
        .collect()
}

/// Reference 2-D convolution (interior points only; the boundary keeps the
/// destination's prior contents).
pub fn ref_conv2d(a: &[f32], b0: &[f32], n: usize) -> Vec<f32> {
    let c = [[0.2f32, -0.3, 0.4], [-0.5, 0.6, -0.7], [0.8, -0.9, 0.1]];
    let mut out = b0.to_vec();
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let mut s = 0.0f32;
            for (di, row) in c.iter().enumerate() {
                for (dj, &w) in row.iter().enumerate() {
                    s += w * a[(i + di - 1) * n + (j + dj - 1)];
                }
            }
            out[i * n + j] = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::interp::{run_kernel, ExecOptions, NullTracer};

    fn run(b: &BuiltKernel, mem: &mut Memory) {
        run_kernel(&b.kernel, &b.args, &b.nd, mem, &ExecOptions::default(), &mut NullTracer)
            .unwrap_or_else(|e| panic!("{}: {}", b.name, e));
    }

    fn assert_close(actual: &[f32], expected: &[f32], what: &str) {
        assert_eq!(actual.len(), expected.len());
        for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
            let tol = 1e-3 * (1.0 + e.abs());
            assert!((a - e).abs() < tol, "{}[{}]: {} vs {}", what, i, a, e);
        }
    }

    #[test]
    fn gesummv_matches_reference() {
        let n = 64;
        let mut mem = Memory::new();
        let a = data::random_f32(n * n, 1);
        let b = data::random_f32(n * n, 2);
        let x = data::random_f32(n, 3);
        let ab = mem.alloc_f32(a.clone());
        let bb = mem.alloc_f32(b.clone());
        let xb = mem.alloc_f32(x.clone());
        let yb = mem.alloc_f32(vec![0.0; n]);
        let built = BuiltKernel::from_source(
            "Gesummv",
            GESUMMV_SRC,
            vec![
                ArgValue::Buffer(ab),
                ArgValue::Buffer(bb),
                ArgValue::Buffer(xb),
                ArgValue::Buffer(yb),
                ArgValue::Float(1.5),
                ArgValue::Float(1.2),
                ArgValue::Int(n as i64),
            ],
            NdRange::d1(n, 32),
        );
        run(&built, &mut mem);
        let expect = ref_gesummv(&a, &b, &x, 1.5, 1.2, n);
        assert_close(mem.read_f32(yb), &expect, "y");
    }

    #[test]
    fn atax_pipeline_matches_reference() {
        let n = 48;
        let mut mem = Memory::new();
        let a = data::random_f32(n * n, 4);
        let x = data::random_f32(n, 5);
        let ab = mem.alloc_f32(a.clone());
        let xb = mem.alloc_f32(x.clone());
        let tmpb = mem.alloc_f32(vec![0.0; n]);
        let yb = mem.alloc_f32(vec![0.0; n]);
        let k1 = BuiltKernel::from_source(
            "ATAX1",
            ATAX1_SRC,
            vec![ArgValue::Buffer(ab), ArgValue::Buffer(xb), ArgValue::Buffer(tmpb), ArgValue::Int(n as i64)],
            NdRange::d1(n, 16),
        );
        let k2 = BuiltKernel::from_source(
            "ATAX2",
            ATAX2_SRC,
            vec![ArgValue::Buffer(ab), ArgValue::Buffer(tmpb), ArgValue::Buffer(yb), ArgValue::Int(n as i64)],
            NdRange::d1(n, 16),
        );
        run(&k1, &mut mem);
        run(&k2, &mut mem);
        let (tmp, y) = ref_atax(&a, &x, n);
        assert_close(mem.read_f32(tmpb), &tmp, "tmp");
        assert_close(mem.read_f32(yb), &y, "y");
    }

    #[test]
    fn mvt2_matches_reference() {
        let n = 40;
        let mut mem = Memory::new();
        let a = data::random_f32(n * n, 6);
        let x2 = data::random_f32(n, 7);
        let y2 = data::random_f32(n, 8);
        let ab = mem.alloc_f32(a.clone());
        let xb = mem.alloc_f32(x2.clone());
        let yb = mem.alloc_f32(y2.clone());
        let built = BuiltKernel::from_source(
            "MVT2",
            MVT2_SRC,
            vec![ArgValue::Buffer(ab), ArgValue::Buffer(xb), ArgValue::Buffer(yb), ArgValue::Int(n as i64)],
            NdRange::d1(n, 8),
        );
        run(&built, &mut mem);
        assert_close(mem.read_f32(xb), &ref_mvt2(&a, &x2, &y2, n), "x2");
    }

    #[test]
    fn conv2d_matches_reference() {
        let n = 32;
        let mut mem = Memory::new();
        let a = data::random_f32(n * n, 9);
        let ab = mem.alloc_f32(a.clone());
        let bb = mem.alloc_f32(vec![0.0; n * n]);
        let built = BuiltKernel::from_source(
            "2DCONV",
            CONV2D_SRC,
            vec![ArgValue::Buffer(ab), ArgValue::Buffer(bb), ArgValue::Int(n as i64), ArgValue::Int(n as i64)],
            NdRange::d2([n, n], [8, 8]),
        );
        run(&built, &mut mem);
        assert_close(mem.read_f32(bb), &ref_conv2d(&a, &vec![0.0; n * n], n), "B");
    }

    #[test]
    fn fdtd_steps_execute_functionally() {
        // Smoke: the three FDTD steps compose without error and change the
        // fields.
        let n = 24;
        let mut mem = Memory::new();
        let ex = mem.alloc_f32(data::random_f32(n * n, 10));
        let ey = mem.alloc_f32(data::random_f32(n * n, 11));
        let hz = mem.alloc_f32(data::random_f32(n * n, 12));
        let before = mem.read_f32(hz).to_vec();
        let nn = ArgValue::Int(n as i64);
        let k1 = BuiltKernel::from_source(
            "FDTD1",
            FDTD1_SRC,
            vec![ArgValue::Buffer(ey), ArgValue::Buffer(hz), nn, nn],
            NdRange::d2([n, n], [8, 8]),
        );
        let k2 = BuiltKernel::from_source(
            "FDTD2",
            FDTD2_SRC,
            vec![ArgValue::Buffer(ex), ArgValue::Buffer(hz), nn, nn],
            NdRange::d2([n, n], [8, 8]),
        );
        let k3 = BuiltKernel::from_source(
            "FDTD3",
            FDTD3_SRC,
            vec![ArgValue::Buffer(ex), ArgValue::Buffer(ey), ArgValue::Buffer(hz), nn, nn],
            NdRange::d2([n, n], [8, 8]),
        );
        run(&k1, &mut mem);
        run(&k2, &mut mem);
        run(&k3, &mut mem);
        assert_ne!(mem.read_f32(hz), &before[..]);
    }

    #[test]
    fn syr2k_small_instance_is_symmetric() {
        // C starts at 0 with beta 0: the rank-2k update is symmetric.
        let n = 16;
        let mut mem = Memory::new();
        let a = data::random_f32(n * n, 13);
        let b = data::random_f32(n * n, 14);
        let ab = mem.alloc_f32(a);
        let bb = mem.alloc_f32(b);
        let cb = mem.alloc_f32(vec![0.0; n * n]);
        let built = BuiltKernel::from_source(
            "SYR2K",
            SYR2K_SRC,
            vec![
                ArgValue::Buffer(ab),
                ArgValue::Buffer(bb),
                ArgValue::Buffer(cb),
                ArgValue::Float(1.0),
                ArgValue::Float(0.0),
                ArgValue::Int(n as i64),
                ArgValue::Int(n as i64),
            ],
            NdRange::d2([n, n], [8, 8]),
        );
        run(&built, &mut mem);
        let c = mem.read_f32(cb);
        for i in 0..n {
            for j in 0..n {
                assert!((c[i * n + j] - c[j * n + i]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gemm_identity_times_matrix() {
        let n = 8;
        let mut mem = Memory::new();
        let mut ident = vec![0.0f32; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        let b = data::random_f32(n * n, 15);
        let ab = mem.alloc_f32(ident);
        let bb = mem.alloc_f32(b.clone());
        let cb = mem.alloc_f32(vec![0.0; n * n]);
        let built = BuiltKernel::from_source(
            "GEMM",
            GEMM_SRC,
            vec![
                ArgValue::Buffer(ab),
                ArgValue::Buffer(bb),
                ArgValue::Buffer(cb),
                ArgValue::Float(1.0),
                ArgValue::Float(0.0),
                ArgValue::Int(n as i64),
            ],
            NdRange::d2([n, n], [4, 4]),
        );
        run(&built, &mut mem);
        let c = mem.read_f32(cb);
        for i in 0..n * n {
            assert!((c[i] - b[i]).abs() < 1e-5);
        }
    }
}
