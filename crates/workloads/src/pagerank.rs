//! The iterative PageRank kernel (paper Table 4, citing Brin & Page).
//!
//! Pull-style formulation over a CSR in-link graph: each work-item owns one
//! vertex and gathers rank mass from its in-neighbours:
//!
//! ```text
//! next[i] = (1 - d)/N + d * Σ_k rank[src[k]] / out_deg[src[k]]
//! ```
//!
//! The host iterates the kernel, swapping `rank`/`next` buffers — each
//! launch goes through Dopia's full pipeline, like any other kernel.

use crate::data::{self, Csr};
use crate::BuiltKernel;
use sim::{ArgValue, BufferId, Memory, NdRange};

pub const PAGERANK_SRC: &str = r#"
__kernel void pagerank(__global int* row_ptr, __global int* src,
                       __global float* rank, __global int* out_deg,
                       __global float* next, float damping, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float s = 0.0f;
        for (int k = row_ptr[i]; k < row_ptr[i + 1]; k++) {
            int v = src[k];
            s = s + rank[v] / (float)out_deg[v];
        }
        next[i] = (1.0f - damping) / (float)N + damping * s;
    }
}
"#;

/// A built PageRank launch plus the handles needed to iterate it.
pub struct PageRankInstance {
    pub built: BuiltKernel,
    pub rank: BufferId,
    pub next: BufferId,
}

/// Paper-scale PageRank: `n` vertices, mean in-degree 256 (matching the
/// dense CSR input the paper pairs with SpMV; see DESIGN.md).
pub fn pagerank(mem: &mut Memory, n: usize, wg: usize) -> BuiltKernel {
    instance(mem, &data::random_csr(n, 256, 0x9A6E), wg).built
}

/// Build from an explicit in-link CSR graph.
pub fn instance(mem: &mut Memory, graph: &Csr, wg: usize) -> PageRankInstance {
    let n = graph.rows();
    // Out-degrees of the *source* vertices: count occurrences in src lists.
    let mut deg = vec![0i32; n];
    for &s in &graph.col_idx {
        deg[s as usize] += 1;
    }
    // Every vertex needs out-degree >= 1 for the division.
    for d in &mut deg {
        if *d == 0 {
            *d = 1;
        }
    }
    let rp = mem.alloc_i32(graph.row_ptr.clone());
    let src = mem.alloc_i32(graph.col_idx.clone());
    let rank = mem.alloc_f32(vec![1.0 / n as f32; n]);
    let degb = mem.alloc_i32(deg);
    let next = mem.alloc_f32(vec![0.0; n]);
    let built = BuiltKernel::from_source(
        "PageRank",
        PAGERANK_SRC,
        vec![
            ArgValue::Buffer(rp),
            ArgValue::Buffer(src),
            ArgValue::Buffer(rank),
            ArgValue::Buffer(degb),
            ArgValue::Buffer(next),
            ArgValue::Float(0.85),
            ArgValue::Int(n as i64),
        ],
        NdRange::d1(n, wg),
    );
    PageRankInstance { built, rank, next }
}

/// Swap the rank/next buffer arguments for the next iteration.
pub fn swap_buffers(inst: &mut PageRankInstance) {
    std::mem::swap(&mut inst.rank, &mut inst.next);
    inst.built.args[2] = ArgValue::Buffer(inst.rank);
    inst.built.args[4] = ArgValue::Buffer(inst.next);
}

/// Sequential reference PageRank step.
pub fn ref_step(graph: &Csr, rank: &[f32], deg: &[i32], damping: f32) -> Vec<f32> {
    let n = graph.rows();
    (0..n)
        .map(|i| {
            let (lo, hi) = (graph.row_ptr[i] as usize, graph.row_ptr[i + 1] as usize);
            let s: f32 = (lo..hi)
                .map(|k| {
                    let v = graph.col_idx[k] as usize;
                    rank[v] / deg[v] as f32
                })
                .sum();
            (1.0 - damping) / n as f32 + damping * s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::interp::{run_kernel, ExecOptions, NullTracer};

    #[test]
    fn one_step_matches_reference() {
        let n = 96;
        let graph = data::random_csr(n, 6, 77);
        let mut mem = Memory::new();
        let inst = instance(&mut mem, &graph, 32);
        let rank0 = mem.read_f32(inst.rank).to_vec();
        let deg = mem.read_i32(inst.built.args[3].as_buffer().unwrap()).to_vec();
        run_kernel(
            &inst.built.kernel,
            &inst.built.args,
            &inst.built.nd,
            &mut mem,
            &ExecOptions::default(),
            &mut NullTracer,
        )
        .unwrap();
        let expect = ref_step(&graph, &rank0, &deg, 0.85);
        let next = mem.read_f32(inst.next);
        for (i, (a, e)) in next.iter().zip(&expect).enumerate() {
            assert!((a - e).abs() < 1e-4, "vertex {}: {} vs {}", i, a, e);
        }
    }

    #[test]
    fn rank_mass_is_conserved_ish() {
        // With damping d and every out-edge counted, total mass stays near
        // 1 across iterations (dangling mass is clamped by deg>=1).
        let n = 200;
        let graph = data::random_csr(n, 8, 78);
        let mut mem = Memory::new();
        let mut inst = instance(&mut mem, &graph, 40);
        for _ in 0..3 {
            run_kernel(
                &inst.built.kernel,
                &inst.built.args,
                &inst.built.nd,
                &mut mem,
                &ExecOptions::default(),
                &mut NullTracer,
            )
            .unwrap();
            swap_buffers(&mut inst);
        }
        let total: f32 = mem.read_f32(inst.rank).iter().sum();
        assert!(total > 0.2 && total < 2.0, "total mass {}", total);
    }

    #[test]
    fn swap_buffers_rebinds_args() {
        let graph = data::random_csr(64, 4, 79);
        let mut mem = Memory::new();
        let mut inst = instance(&mut mem, &graph, 16);
        let r0 = inst.rank;
        let n0 = inst.next;
        swap_buffers(&mut inst);
        assert_eq!(inst.rank, n0);
        assert_eq!(inst.next, r0);
        assert_eq!(inst.built.args[2], ArgValue::Buffer(n0));
        assert_eq!(inst.built.args[4], ArgValue::Buffer(r0));
    }
}
