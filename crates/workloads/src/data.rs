//! Seeded input-data generation.
//!
//! Uses a hand-rolled splitmix64/xorshift generator rather than `rand`'s
//! default ChaCha: input generation touches tens of millions of elements
//! per workload and must stay cheap even in debug builds; cryptographic
//! quality is irrelevant for synthetic matrices.

/// A minimal, fast, seedable PRNG (xorshift64* seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct FastRng {
    state: u64,
}

impl FastRng {
    pub fn new(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FastRng { state: (z ^ (z >> 31)) | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f32 in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Deterministic vector of `n` floats in `[0, 1)`.
pub fn random_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = FastRng::new(seed);
    (0..n).map(|_| rng.next_f32()).collect()
}

/// Deterministic vector of `n` ints in `[0, bound)`.
pub fn random_i32(n: usize, bound: i32, seed: u64) -> Vec<i32> {
    assert!(bound > 0);
    let mut rng = FastRng::new(seed);
    (0..n).map(|_| rng.next_below(bound as u64) as i32).collect()
}

/// A CSR sparse-matrix structure (values omitted where only the pattern
/// matters).
#[derive(Debug, Clone)]
pub struct Csr {
    /// `rows + 1` offsets.
    pub row_ptr: Vec<i32>,
    /// Column index of each stored element.
    pub col_idx: Vec<i32>,
    /// Stored values.
    pub values: Vec<f32>,
}

impl Csr {
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }
}

/// Generate a CSR matrix with `rows` rows and a mean of `mean_nnz` stored
/// elements per row. Row lengths follow a skewed (bounded power-law-like)
/// distribution so adjacent rows differ — the irregularity that makes SpMV
/// and PageRank CPU-affine in the paper. Column indices are uniform.
pub fn random_csr(rows: usize, mean_nnz: usize, seed: u64) -> Csr {
    assert!(rows > 0 && mean_nnz > 0);
    let mut rng = FastRng::new(seed);
    let mut row_ptr = Vec::with_capacity(rows + 1);
    row_ptr.push(0i32);
    let mut lengths = Vec::with_capacity(rows);
    // Skewed lengths: most rows short, a few long, mean ≈ mean_nnz.
    for _ in 0..rows {
        let u: f64 = rng.next_f64().max(1e-9);
        // Pareto-ish with alpha ~ 1.5, clamped to keep totals bounded.
        let len = (mean_nnz as f64 * 0.4 / u.powf(0.6)).round() as usize;
        lengths.push(len.clamp(1, mean_nnz * 16));
    }
    // Rescale to hit the requested mean exactly (integer rounding aside).
    let total: usize = lengths.iter().sum();
    let want = rows * mean_nnz;
    let scale = want as f64 / total as f64;
    let mut acc = 0i64;
    for len in &mut lengths {
        *len = ((*len as f64) * scale).round().max(1.0) as usize;
        acc += *len as i64;
        row_ptr.push(acc as i32);
    }
    let nnz = acc as usize;
    let col_idx = (0..nnz).map(|_| rng.next_below(rows as u64) as i32).collect();
    let values = (0..nnz).map(|_| rng.next_f32()).collect();
    Csr { row_ptr, col_idx, values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_f32(16, 3), random_f32(16, 3));
        assert_ne!(random_f32(16, 3), random_f32(16, 4));
        assert_eq!(random_i32(16, 100, 5), random_i32(16, 100, 5));
    }

    #[test]
    fn fast_rng_ranges() {
        let mut rng = FastRng::new(7);
        for _ in 0..1000 {
            let f = rng.next_f32();
            assert!((0.0..1.0).contains(&f));
            let d = rng.next_f64();
            assert!((0.0..1.0).contains(&d));
            assert!(rng.next_below(10) < 10);
        }
    }

    #[test]
    fn fast_rng_is_roughly_uniform() {
        let mut rng = FastRng::new(11);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "{:?}", buckets);
        }
    }

    #[test]
    fn csr_structure_is_consistent() {
        let m = random_csr(1000, 16, 7);
        assert_eq!(m.rows(), 1000);
        assert_eq!(m.row_ptr.len(), 1001);
        assert_eq!(*m.row_ptr.last().unwrap() as usize, m.nnz());
        assert_eq!(m.col_idx.len(), m.values.len());
        // Monotone offsets, each row non-empty.
        for w in m.row_ptr.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Columns in range.
        assert!(m.col_idx.iter().all(|&c| c >= 0 && (c as usize) < 1000));
    }

    #[test]
    fn csr_mean_density_close_to_requested() {
        let m = random_csr(4096, 16, 11);
        let mean = m.nnz() as f64 / m.rows() as f64;
        assert!((mean - 16.0).abs() < 1.5, "mean = {}", mean);
    }

    #[test]
    fn csr_rows_are_irregular() {
        let m = random_csr(4096, 16, 13);
        let lens: Vec<i32> = m.row_ptr.windows(2).map(|w| w[1] - w[0]).collect();
        let max = *lens.iter().max().unwrap();
        let min = *lens.iter().min().unwrap();
        assert!(max > 4 * min.max(1), "max {} min {}", max, min);
    }
}
