//! The parameterizable synthetic workload of paper Table 2.
//!
//! The basic operation adds `alpha` matrices of dimension `beta`:
//!
//! ```text
//! OUT[idx] = c1*..*c_gamma * M0[...] + c1*..*c_gamma * M1[...] + ...
//! ```
//!
//! where `delta` of the term matrices use transposed (strided) accesses,
//! `epsilon` use randomized (indirect) accesses, and `theta` use constant
//! accesses. `dim` selects how many of the `beta` dimensions are covered by
//! work-item ids (the rest become kernel loops, exactly as in paper
//! Figs. 5/6), and `dtype` chooses float or integer data.
//!
//! [`training_grid`] enumerates the full Table 4 grid: the 17 named access
//! patterns x 2 data types x 2 work-item dimensions x 3 computational
//! intensities (gamma = 0, 2, 4) x 3 matrix sizes (16384, 32768, 65536
//! elements) x 2 work-group sizes (64, 256) = 1,224 workloads.
//!
//! Deviations from the paper, recorded in DESIGN.md: the indirection array
//! of `R` terms is indexed by the flattened element index (length = matrix
//! size) rather than by the innermost coordinate, so randomized accesses
//! cover the whole matrix; and 2-D launches use `(wg, 1)` work-groups
//! (the paper does not specify 2-D shapes for the synthetic workload).

use crate::data;
use crate::BuiltKernel;
use sim::{ArgValue, Memory, NdRange};
use std::fmt::Write;

/// Element type of the matrices (paper Table 2 `dtype`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    F32,
    I32,
}

impl DType {
    fn cl_type(&self) -> &'static str {
        match self {
            DType::F32 => "float",
            DType::I32 => "int",
        }
    }
}

/// The code-shape part of a synthetic workload (fixed per named pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticPattern {
    /// Matrices to add.
    pub alpha: usize,
    /// Matrix dimensionality (3 or 4 in the paper's grid).
    pub beta: usize,
    /// Terms with transposed access.
    pub delta: usize,
    /// Terms with randomized (indirect) access.
    pub epsilon: usize,
    /// Terms with constant access.
    pub theta: usize,
}

impl SyntheticPattern {
    /// Number of additive terms: modifiers claim their own matrices; any
    /// remaining `alpha` slots are plain accesses.
    pub fn term_kinds(&self) -> Vec<TermKind> {
        let modified = self.delta + self.epsilon + self.theta;
        let normal = self.alpha.saturating_sub(modified);
        let mut kinds = Vec::with_capacity(normal + modified);
        kinds.extend(std::iter::repeat_n(TermKind::Normal, normal));
        kinds.extend(std::iter::repeat_n(TermKind::Transposed, self.delta));
        kinds.extend(std::iter::repeat_n(TermKind::Random, self.epsilon));
        kinds.extend(std::iter::repeat_n(TermKind::Constant, self.theta));
        kinds
    }

    /// Canonical name, e.g. `2mat3d1C1R1T` (gamma excluded — it belongs to
    /// the configuration, not the pattern).
    pub fn name(&self) -> String {
        // Table 4 orders modifiers C, R, T (e.g. 1mat3d1C1R, 2mat3d1C1R1T).
        let mut s = format!("{}mat{}d", self.alpha, self.beta);
        if self.theta > 0 {
            write!(s, "{}C", self.theta).unwrap();
        }
        if self.epsilon > 0 {
            write!(s, "{}R", self.epsilon).unwrap();
        }
        if self.delta > 0 {
            write!(s, "{}T", self.delta).unwrap();
        }
        s
    }
}

/// Access flavour of one additive term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermKind {
    Normal,
    Transposed,
    Random,
    Constant,
}

/// Parse a pattern name like `2mat3d1C1R1T`.
pub fn parse_pattern(name: &str) -> Option<SyntheticPattern> {
    let mat = name.find("mat")?;
    let alpha: usize = name[..mat].parse().ok()?;
    let rest = &name[mat + 3..];
    let d = rest.find('d')?;
    let beta: usize = rest[..d].parse().ok()?;
    let mut delta = 0;
    let mut epsilon = 0;
    let mut theta = 0;
    let mut tail = &rest[d + 1..];
    while !tail.is_empty() {
        let split = tail.find(|c: char| !c.is_ascii_digit())?;
        let count: usize = tail[..split].parse().ok()?;
        match &tail[split..split + 1] {
            "T" => delta = count,
            "R" => epsilon = count,
            "C" => theta = count,
            _ => return None,
        }
        tail = &tail[split + 1..];
    }
    Some(SyntheticPattern { alpha, beta, delta, epsilon, theta })
}

/// The 17 named access patterns of paper Table 4.
pub const PATTERN_NAMES: [&str; 17] = [
    "1mat3d", "1mat3d1R", "1mat3d1T", "1mat3d1C", "1mat3d1C1R", "1mat3d1C1T", "2mat3d",
    "2mat3d1R", "2mat3d1T", "2mat3d1R1T", "2mat3d1C", "2mat3d1C1R", "2mat3d1C1T",
    "2mat3d1C1R1T", "1mat4d", "1mat4d1R", "1mat4d1T",
];

/// One fully-specified synthetic workload (pattern + configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticParams {
    pub pattern: SyntheticPattern,
    /// Scalar multiplications per term (computational intensity).
    pub gamma: usize,
    /// Work-item dimensionality (1 or 2).
    pub dim: usize,
    pub dtype: DType,
    /// Total matrix elements.
    pub size: usize,
    /// Work-items per work-group.
    pub wg: usize,
}

impl SyntheticParams {
    /// Full display name, e.g. `2mat3d2c1T/f32/dim1/16384/wg256`.
    pub fn name(&self) -> String {
        let mut s = format!("{}mat{}d", self.pattern.alpha, self.pattern.beta);
        if self.gamma > 0 {
            write!(s, "{}c", self.gamma).unwrap();
        }
        if self.pattern.theta > 0 {
            write!(s, "{}C", self.pattern.theta).unwrap();
        }
        if self.pattern.epsilon > 0 {
            write!(s, "{}R", self.pattern.epsilon).unwrap();
        }
        if self.pattern.delta > 0 {
            write!(s, "{}T", self.pattern.delta).unwrap();
        }
        let ty = match self.dtype {
            DType::F32 => "f32",
            DType::I32 => "i32",
        };
        write!(s, "/{}/dim{}/{}/wg{}", ty, self.dim, self.size, self.wg).unwrap();
        s
    }

    /// Matrix shape: `size` is the leading dimension (= the number of
    /// work-items, matching the paper's `global_size` feature); the
    /// trailing dimensions are small constants iterated by kernel loops.
    /// Total elements = `size x 64` (4–16 M elements, 16–64 MB per float
    /// matrix — large enough that no CPU cache holds a matrix, like the
    /// paper's 1–2 s workloads).
    pub fn shape(&self) -> Vec<usize> {
        let tail: &[usize] = match self.pattern.beta {
            3 => &[8, 8],
            4 => &[4, 4, 4],
            other => panic!("unsupported beta {}", other),
        };
        let mut shape = vec![self.size];
        shape.extend_from_slice(tail);
        shape
    }

    /// Total elements per matrix.
    pub fn total_elems(&self) -> usize {
        self.shape().iter().product()
    }

    /// Generate the OpenCL kernel source.
    pub fn source(&self) -> String {
        let p = &self.pattern;
        let kinds = p.term_kinds();
        let ty = self.dtype.cl_type();
        let beta = p.beta;
        assert!(self.dim == 1 || self.dim == 2, "dim must be 1 or 2");

        let mut src = String::new();
        // Signature.
        write!(src, "__kernel void synth(__global {ty}* OUT").unwrap();
        for (t, _) in kinds.iter().enumerate() {
            write!(src, ", __global {ty}* M{t}").unwrap();
        }
        if p.epsilon > 0 {
            src.push_str(", __global int* IDX");
        }
        for d in 0..beta {
            write!(src, ", int N{d}").unwrap();
        }
        for g in 0..self.gamma {
            write!(src, ", {ty} c{}", g + 1).unwrap();
        }
        if p.theta > 0 {
            src.push_str(", int cc");
        }
        src.push_str(") {\n");

        // Ids and guard.
        for d in 0..self.dim {
            writeln!(src, "    int i{d} = get_global_id({d});").unwrap();
        }
        let guard: Vec<String> = (0..self.dim).map(|d| format!("(i{d} < N{d})")).collect();
        writeln!(src, "    if ({}) {{", guard.join(" && ")).unwrap();

        // Loops over the remaining dimensions.
        for d in self.dim..beta {
            writeln!(
                src,
                "{}for (int i{d} = 0; i{d} < N{d}; i{d}++) {{",
                "    ".repeat(d - self.dim + 2)
            )
            .unwrap();
        }
        let body_indent = "    ".repeat(beta - self.dim + 2);

        // Flattened index (row-major, i0 slowest).
        let flat = |coords: &[String]| -> String {
            let mut expr = String::new();
            for (d, c) in coords.iter().enumerate() {
                if d > 0 {
                    expr.push_str(" + ");
                }
                let stride: Vec<String> =
                    ((d + 1)..beta).map(|k| format!("N{k}")).collect();
                if stride.is_empty() {
                    expr.push_str(c);
                } else {
                    write!(expr, "{} * ({})", c, stride.join(" * ")).unwrap();
                }
            }
            expr
        };
        let coords: Vec<String> = (0..beta).map(|d| format!("i{d}")).collect();
        writeln!(src, "{body_indent}int idx = {};", flat(&coords)).unwrap();
        if p.delta > 0 {
            // Transposed: swap the last two coordinates (strided access).
            let mut tcoords = coords.clone();
            tcoords.swap(beta - 1, beta - 2);
            writeln!(src, "{body_indent}int idxT = {};", flat(&tcoords)).unwrap();
        }

        // The sum of terms.
        let coeff: String = (1..=self.gamma).map(|g| format!("c{g} * ")).collect();
        let terms: Vec<String> = kinds
            .iter()
            .enumerate()
            .map(|(t, kind)| {
                let access = match kind {
                    TermKind::Normal => format!("M{t}[idx]"),
                    TermKind::Transposed => format!("M{t}[idxT]"),
                    TermKind::Random => format!("M{t}[IDX[idx]]"),
                    TermKind::Constant => format!("M{t}[cc]"),
                };
                format!("{coeff}{access}")
            })
            .collect();
        writeln!(src, "{body_indent}OUT[idx] = {};", terms.join(" + ")).unwrap();

        // Close loops, guard, kernel.
        for d in (self.dim..beta).rev() {
            writeln!(src, "{}}}", "    ".repeat(d - self.dim + 2)).unwrap();
        }
        src.push_str("    }\n}\n");
        src
    }

    /// Launch geometry: ids cover the first `dim` dimensions.
    pub fn nd_range(&self) -> NdRange {
        let shape = self.shape();
        match self.dim {
            1 => NdRange::d1(shape[0], self.wg),
            2 => NdRange::d2([shape[0], shape[1]], [self.wg, 1]),
            other => panic!("unsupported dim {}", other),
        }
    }

    /// Allocate inputs and bundle the launch. Float matrices are virtual
    /// (storage-less) so the full grid fits in memory; integer matrices and
    /// the indirection array are real.
    pub fn build(&self, mem: &mut Memory, seed: u64) -> BuiltKernel {
        let p = &self.pattern;
        let kinds = p.term_kinds();
        let shape = self.shape();
        let mut args: Vec<ArgValue> = Vec::new();

        let total = self.total_elems();
        let alloc_matrix = |mem: &mut Memory, salt: u64| match self.dtype {
            DType::F32 => mem.alloc_virtual_f32(total, seed ^ salt),
            DType::I32 => mem.alloc_i32(data::random_i32(total, 1000, seed ^ salt)),
        };

        args.push(ArgValue::Buffer(alloc_matrix(mem, 0xC0)));
        for (t, _) in kinds.iter().enumerate() {
            args.push(ArgValue::Buffer(alloc_matrix(mem, t as u64 + 1)));
        }
        if p.epsilon > 0 {
            let idx = data::random_i32(total, total as i32, seed ^ 0x1D);
            args.push(ArgValue::Buffer(mem.alloc_i32(idx)));
        }
        for &n in &shape {
            args.push(ArgValue::Int(n as i64));
        }
        for g in 0..self.gamma {
            match self.dtype {
                DType::F32 => args.push(ArgValue::Float(1.0 + g as f32 * 0.5)),
                DType::I32 => args.push(ArgValue::Int(g as i64 + 1)),
            }
        }
        if p.theta > 0 {
            args.push(ArgValue::Int(3));
        }

        BuiltKernel::from_source(self.name(), &self.source(), args, self.nd_range())
    }
}

/// The full Table 4 training grid: 17 patterns x 72 configurations = 1,224
/// workloads, in a stable order.
pub fn training_grid() -> Vec<SyntheticParams> {
    let mut grid = Vec::with_capacity(1224);
    for name in PATTERN_NAMES {
        let pattern = parse_pattern(name).expect("pattern table is valid");
        for dtype in [DType::F32, DType::I32] {
            for dim in [1usize, 2] {
                for gamma in [0usize, 2, 4] {
                    for size in [16384usize, 32768, 65536] {
                        for wg in [64usize, 256] {
                            grid.push(SyntheticParams {
                                pattern,
                                gamma,
                                dim,
                                dtype,
                                size,
                                wg,
                            });
                        }
                    }
                }
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::interp::{run_kernel, ExecOptions, NullTracer};

    #[test]
    fn pattern_parsing_round_trips() {
        for name in PATTERN_NAMES {
            let p = parse_pattern(name).unwrap_or_else(|| panic!("parse {}", name));
            assert_eq!(p.name(), name, "round trip {}", name);
        }
        assert!(parse_pattern("notapattern").is_none());
        assert!(parse_pattern("2mat").is_none());
    }

    #[test]
    fn grid_is_exactly_1224() {
        let grid = training_grid();
        assert_eq!(grid.len(), 1224);
        // All names unique.
        let mut names: Vec<String> = grid.iter().map(|g| g.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 1224);
    }

    #[test]
    fn every_grid_kernel_compiles_and_validates() {
        for params in training_grid() {
            let src = params.source();
            clc::compile(&src)
                .unwrap_or_else(|e| panic!("{}: {}\n{}", params.name(), e, src));
            params.nd_range().validate().unwrap();
        }
    }

    #[test]
    fn term_assignment_matches_paper_examples() {
        // "2mat2d2c1T": one normal + one transposed term.
        let p = SyntheticPattern { alpha: 2, beta: 3, delta: 1, epsilon: 0, theta: 0 };
        assert_eq!(p.term_kinds(), vec![TermKind::Normal, TermKind::Transposed]);
        // Modifiers exceeding alpha append terms.
        let p = SyntheticPattern { alpha: 2, beta: 3, delta: 1, epsilon: 1, theta: 1 };
        assert_eq!(
            p.term_kinds(),
            vec![TermKind::Transposed, TermKind::Random, TermKind::Constant]
        );
    }

    #[test]
    fn generated_source_shape_matches_figure5() {
        let params = SyntheticParams {
            pattern: parse_pattern("2mat3d").unwrap(),
            gamma: 0,
            dim: 1,
            dtype: DType::F32,
            size: 16384,
            wg: 256,
        };
        let src = params.source();
        assert!(src.contains("int i0 = get_global_id(0);"), "{}", src);
        assert!(src.contains("for (int i1 = 0; i1 < N1; i1++)"), "{}", src);
        assert!(src.contains("OUT[idx] = M0[idx] + M1[idx];"), "{}", src);
        // dim=2 moves i1 into the id space.
        let params2 = SyntheticParams { dim: 2, ..params };
        let src2 = params2.source();
        assert!(src2.contains("int i1 = get_global_id(1);"), "{}", src2);
        assert!(src2.contains("(i0 < N0) && (i1 < N1)"), "{}", src2);
    }

    #[test]
    fn functional_execution_of_small_instance() {
        // A tiny real-buffer instance of 2mat3d2c: verify OUT = c1*c2*(A+B).
        let params = SyntheticParams {
            pattern: parse_pattern("2mat3d").unwrap(),
            gamma: 2,
            dim: 1,
            dtype: DType::F32,
            size: 2048,
            wg: 64,
        };
        let mut mem = Memory::new();
        // Build real buffers by hand (the default build uses virtual ones).
        let total = params.total_elems();
        let out = mem.alloc_f32(vec![0.0; total]);
        let m0 = mem.alloc_f32(vec![2.0; total]);
        let m1 = mem.alloc_f32(vec![3.0; total]);
        let shape = params.shape();
        let mut args = vec![ArgValue::Buffer(out), ArgValue::Buffer(m0), ArgValue::Buffer(m1)];
        for &n in &shape {
            args.push(ArgValue::Int(n as i64));
        }
        args.push(ArgValue::Float(2.0));
        args.push(ArgValue::Float(0.5));
        let built = BuiltKernel::from_source(params.name(), &params.source(), args, params.nd_range());
        run_kernel(
            &built.kernel,
            &built.args,
            &built.nd,
            &mut mem,
            &ExecOptions::default(),
            &mut NullTracer,
        )
        .unwrap();
        // c1*c2*A + c1*c2*B = 1.0*(2+3) = 5.
        assert!(mem.read_f32(out).iter().all(|&v| v == 5.0));
    }

    #[test]
    fn random_pattern_has_indirection_argument() {
        let params = SyntheticParams {
            pattern: parse_pattern("1mat3d1R").unwrap(),
            gamma: 0,
            dim: 1,
            dtype: DType::F32,
            size: 1024,
            wg: 64,
        };
        assert!(params.source().contains("__global int* IDX"));
        assert!(params.source().contains("M0[IDX[idx]]"));
        let mut mem = Memory::new();
        let built = params.build(&mut mem, 5);
        assert_eq!(built.args.len(), built.kernel.params.len());
    }

    #[test]
    fn int_dtype_generates_int_kernel() {
        let params = SyntheticParams {
            pattern: parse_pattern("1mat3d").unwrap(),
            gamma: 2,
            dim: 1,
            dtype: DType::I32,
            size: 1024,
            wg: 64,
        };
        let src = params.source();
        assert!(src.contains("__global int* OUT"));
        assert!(src.contains("int c1"));
        let mut mem = Memory::new();
        let built = params.build(&mut mem, 1);
        assert_eq!(built.args.len(), built.kernel.params.len());
    }
}
