//! `workloads` — every kernel the Dopia paper trains on or evaluates.
//!
//! * [`synthetic`] — the parameterizable workload of Table 2 (`αmat βd γc
//!   δT εR θC`, work-item dimension, data type) and the full 1,224-point
//!   training grid of Table 4 (17 access patterns x 72 configurations).
//! * [`polybench`] — the twelve data-intensive Polybench kernels (2DCONV,
//!   ATAX1–2, BICG1–2, FDTD1–3, GESUMMV, MVT1–2, SYR2K) plus GEMM (listed
//!   in the paper's prose).
//! * [`spmv`] — CSR sparse matrix-vector multiplication.
//! * [`pagerank`] — the iterative PageRank kernel.
//! * [`data`] — seeded input generation (dense matrices, CSR structures).
//!
//! Every builder returns a [`BuiltKernel`]: compiled kernel + bound
//! arguments + NDRange, ready for `sim::Engine`. Inputs at paper scale use
//! virtual buffers (deterministic, storage-less); correctness tests build
//! small real-buffer instances and compare against the Rust reference
//! implementations included here.

pub mod data;
pub mod pagerank;
pub mod polybench;
pub mod spmv;
pub mod synthetic;

use sim::{ArgValue, Memory, NdRange};

/// A fully-prepared kernel launch.
#[derive(Debug, Clone)]
pub struct BuiltKernel {
    /// Display name, matching the paper's figure labels (e.g. "ATAX2").
    pub name: String,
    /// Compiled, semantically-checked kernel.
    pub kernel: clc::Kernel,
    /// Bound arguments (buffers live in the `Memory` passed to the builder).
    pub args: Vec<ArgValue>,
    /// Launch geometry.
    pub nd: NdRange,
}

impl BuiltKernel {
    /// Compile `source` (must contain exactly one kernel) and bundle it.
    pub fn from_source(
        name: impl Into<String>,
        source: &str,
        args: Vec<ArgValue>,
        nd: NdRange,
    ) -> Self {
        let program = clc::compile(source)
            .unwrap_or_else(|e| panic!("workload kernel failed to compile: {}\n{}", e, source));
        assert_eq!(program.kernels.len(), 1, "expected exactly one kernel");
        BuiltKernel {
            name: name.into(),
            kernel: program.kernels.into_iter().next().unwrap(),
            args,
            nd,
        }
    }

    /// View as a `sim` launch spec.
    pub fn spec(&self) -> sim::engine::LaunchSpec<'_> {
        sim::engine::LaunchSpec { kernel: &self.kernel, args: &self.args, nd: self.nd }
    }
}

/// The fourteen real-world kernels of paper Table 4, built at paper-scale
/// problem sizes with the given work-group *variant* (0 = small: 64 / 8x8,
/// 1 = large: 256 / 16x16). 2DCONV, FDTD and SYR2K are two-dimensional.
pub fn real_world_suite(mem: &mut Memory, wg_variant: usize) -> Vec<BuiltKernel> {
    let (wg1, wg2) = match wg_variant {
        0 => (64usize, [8usize, 8usize]),
        _ => (256, [16, 16]),
    };
    let n = 16384;
    vec![
        polybench::conv2d(mem, 8192, wg2),
        polybench::atax1(mem, n, wg1),
        polybench::atax2(mem, n, wg1),
        polybench::bicg1(mem, n, wg1),
        polybench::bicg2(mem, n, wg1),
        polybench::fdtd1(mem, n, wg2),
        polybench::fdtd2(mem, n, wg2),
        polybench::fdtd3(mem, n, wg2),
        polybench::gesummv(mem, n, wg1),
        polybench::mvt1(mem, n, wg1),
        polybench::mvt2(mem, n, wg1),
        polybench::syr2k(mem, 1024, wg2),
        pagerank::pagerank(mem, n, wg1),
        spmv::spmv_csr(mem, n, wg1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_kernels_and_paper_names() {
        let mut mem = Memory::new();
        let suite = real_world_suite(&mut mem, 1);
        assert_eq!(suite.len(), 14);
        let names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        for expected in [
            "2DCONV", "ATAX1", "ATAX2", "BICG1", "BICG2", "FDTD1", "FDTD2", "FDTD3",
            "Gesummv", "MVT1", "MVT2", "SYR2K", "PageRank", "SpMV",
        ] {
            assert!(names.contains(&expected), "missing {}", expected);
        }
    }

    #[test]
    fn both_work_group_variants_validate() {
        for variant in [0, 1] {
            let mut mem = Memory::new();
            for b in real_world_suite(&mut mem, variant) {
                b.nd.validate().unwrap_or_else(|e| panic!("{}: {}", b.name, e));
                assert_eq!(b.args.len(), b.kernel.params.len(), "{}", b.name);
            }
        }
    }
}
