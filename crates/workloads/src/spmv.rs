//! Sparse matrix-vector multiplication in CSR format (paper Table 4).
//!
//! The paper's input has 16,384 rows; we generate a skewed row-length
//! distribution with a mean of 16 stored elements per row so adjacent rows
//! differ in length — the irregularity (wavefront divergence + random
//! gathers on `x`) that makes SpMV CPU-affine on integrated parts.

use crate::data::{self, Csr};
use crate::BuiltKernel;
use sim::{ArgValue, Memory, NdRange};

/// One work-item per row: `y[i] = Σ values[k] * x[col_idx[k]]`.
pub const SPMV_SRC: &str = r#"
__kernel void spmv(__global int* row_ptr, __global int* col_idx,
                   __global float* values, __global float* x,
                   __global float* y, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float s = 0.0f;
        for (int k = row_ptr[i]; k < row_ptr[i + 1]; k++) {
            s = s + values[k] * x[col_idx[k]];
        }
        y[i] = s;
    }
}
"#;

/// Paper-scale SpMV: `rows` rows, mean 256 nnz/row. (The paper's CSR input
/// is denser still — "elements per row … 16,384" — but that would need
/// gigabytes of real index storage; 256 preserves the irregularity and the
/// random-gather footprint at laptop scale, see DESIGN.md.)
pub fn spmv_csr(mem: &mut Memory, rows: usize, wg: usize) -> BuiltKernel {
    build_from_csr(mem, &data::random_csr(rows, 256, 0x5137), wg)
}

/// Build an SpMV launch from an explicit CSR matrix.
pub fn build_from_csr(mem: &mut Memory, m: &Csr, wg: usize) -> BuiltKernel {
    let rows = m.rows();
    let rp = mem.alloc_i32(m.row_ptr.clone());
    let ci = mem.alloc_i32(m.col_idx.clone());
    let vals = mem.alloc_f32(m.values.clone());
    let x = mem.alloc_f32(data::random_f32(rows, 0x5138));
    let y = mem.alloc_f32(vec![0.0; rows]);
    BuiltKernel::from_source(
        "SpMV",
        SPMV_SRC,
        vec![
            ArgValue::Buffer(rp),
            ArgValue::Buffer(ci),
            ArgValue::Buffer(vals),
            ArgValue::Buffer(x),
            ArgValue::Buffer(y),
            ArgValue::Int(rows as i64),
        ],
        NdRange::d1(rows, wg),
    )
}

/// Sequential reference SpMV.
pub fn ref_spmv(m: &Csr, x: &[f32]) -> Vec<f32> {
    (0..m.rows())
        .map(|i| {
            let (lo, hi) = (m.row_ptr[i] as usize, m.row_ptr[i + 1] as usize);
            (lo..hi).map(|k| m.values[k] * x[m.col_idx[k] as usize]).sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::interp::{run_kernel, ExecOptions, NullTracer};

    #[test]
    fn spmv_matches_reference() {
        let rows = 128;
        let m = data::random_csr(rows, 8, 42);
        let mut mem = Memory::new();
        let built = build_from_csr(&mut mem, &m, 32);
        run_kernel(
            &built.kernel,
            &built.args,
            &built.nd,
            &mut mem,
            &ExecOptions::default(),
            &mut NullTracer,
        )
        .unwrap();
        // x is args[3], y is args[4].
        let x = mem.read_f32(built.args[3].as_buffer().unwrap()).to_vec();
        let y = mem.read_f32(built.args[4].as_buffer().unwrap());
        let expect = ref_spmv(&m, &x);
        for (i, (a, e)) in y.iter().zip(&expect).enumerate() {
            assert!((a - e).abs() < 1e-3 * (1.0 + e.abs()), "row {}: {} vs {}", i, a, e);
        }
    }

    #[test]
    fn paper_scale_instance_profiles_with_divergence() {
        let mut mem = Memory::new();
        let built = spmv_csr(&mut mem, 16384, 256);
        let engine = sim::Engine::kaveri();
        let p = engine.profile(built.spec(), &mut mem).unwrap();
        assert!(p.divergence > 1.2, "divergence = {}", p.divergence);
        // The x gather must be classified as random.
        assert!(p
            .sites
            .iter()
            .any(|s| s.class == sim::AccessClass::Random));
    }
}
