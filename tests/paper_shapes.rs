//! The paper's qualitative results as executable assertions: every claim
//! the evaluation section rests on must hold in the reproduction.

use dopia::prelude::*;
use sim::engine::DopConfig;

fn profile_of(engine: &Engine, built: &workloads::BuiltKernel, mem: &mut Memory) -> sim::KernelProfile {
    engine.profile(built.spec(), mem).unwrap_or_else(|e| panic!("{}: {}", built.name, e))
}

/// Figure 1: for Gesummv on Kaveri, an interior CPU+GPU mix beats
/// CPU-only, GPU-only and ALL; and the headline ordering holds
/// (CPU-only ~70-80%, ALL ~60-75%, GPU-only < 30% of best).
#[test]
fn fig1_gesummv_interior_optimum() {
    let engine = Engine::kaveri();
    let mut mem = Memory::new();
    let built = workloads::polybench::gesummv(&mut mem, 16384, 256);
    let p = profile_of(&engine, &built, &mut mem);
    let sched = Schedule::Dynamic { chunk_divisor: 10 };
    let t = |cpu: usize, g: usize| {
        engine
            .simulate(
                &p,
                &built.nd,
                DopConfig { cpu_cores: cpu, gpu_frac: g as f64 / 8.0 },
                sched,
                true,
            )
            .time_s
    };
    let mut best = f64::INFINITY;
    let mut best_at = (0, 0);
    for cpu in 0..=4 {
        for g in 0..=8 {
            if cpu == 0 && g == 0 {
                continue;
            }
            let v = t(cpu, g);
            if v < best {
                best = v;
                best_at = (cpu, g);
            }
        }
    }
    // Interior optimum in the GPU dimension.
    assert!(best_at.1 >= 1 && best_at.1 <= 5, "best at {:?}", best_at);
    let cpu_only = best / t(4, 0);
    let gpu_only = best / t(0, 8);
    let all = best / t(4, 8);
    assert!((0.55..0.95).contains(&cpu_only), "CPU-only {} (paper 0.78)", cpu_only);
    assert!(gpu_only < 0.35, "GPU-only {} (paper 0.13)", gpu_only);
    assert!((0.45..0.90).contains(&all), "ALL {} (paper 0.61)", all);
}

/// Figure 3(b): GPU memory requests grow monotonically (and substantially)
/// with active GPU threads for a streaming kernel.
#[test]
fn fig3_memory_requests_grow_with_gpu_utilization() {
    let engine = Engine::kaveri();
    let mut mem = Memory::new();
    let built = workloads::polybench::gesummv(&mut mem, 16384, 256);
    let p = profile_of(&engine, &built, &mut mem);
    let sched = Schedule::Dynamic { chunk_divisor: 10 };
    let reqs: Vec<f64> = (1..=8)
        .map(|g| {
            engine
                .simulate(
                    &p,
                    &built.nd,
                    DopConfig { cpu_cores: 4, gpu_frac: g as f64 / 8.0 },
                    sched,
                    true,
                )
                .mem_requests
        })
        .collect();
    for w in reqs.windows(2) {
        assert!(w[1] >= w[0] * 0.999, "requests not monotone: {:?}", reqs);
    }
    assert!(reqs[7] / reqs[0] > 1.2, "growth too small: {:?}", reqs);
}

/// Section 9.4: irregular kernels (SpMV, PageRank) are CPU-affine —
/// CPU-only beats GPU-only by a wide margin — while lane-coalescable
/// kernels (ATAX2/MVT2 column walks, FDTD) favour the GPU over their
/// row-walk siblings.
#[test]
fn kernel_affinities_match_paper() {
    let engine = Engine::kaveri();
    let mut mem = Memory::new();

    for built in [
        workloads::spmv::spmv_csr(&mut mem, 16384, 256),
        workloads::pagerank::pagerank(&mut mem, 16384, 256),
    ] {
        let p = profile_of(&engine, &built, &mut mem);
        let cpu = baselines::simulate_baseline(&engine, &p, &built.nd, Baseline::Cpu).time_s;
        let gpu = baselines::simulate_baseline(&engine, &p, &built.nd, Baseline::Gpu).time_s;
        assert!(gpu > cpu * 3.0, "{}: gpu {} vs cpu {}", built.name, gpu, cpu);
    }

    // GPU-only handles the coalescable column walk (MVT2) relatively
    // better than the scattered row walk sibling (MVT1 is
    // bandwidth-friendly on CPU, so compare GPU-only ratios).
    let mvt1 = workloads::polybench::mvt1(&mut mem, 16384, 256);
    let mvt2 = workloads::polybench::mvt2(&mut mem, 16384, 256);
    let p1 = profile_of(&engine, &mvt1, &mut mem);
    let p2 = profile_of(&engine, &mvt2, &mut mem);
    let r1 = baselines::simulate_baseline(&engine, &p1, &mvt1.nd, Baseline::Gpu).time_s
        / baselines::simulate_baseline(&engine, &p1, &mvt1.nd, Baseline::Cpu).time_s;
    let r2 = baselines::simulate_baseline(&engine, &p2, &mvt2.nd, Baseline::Gpu).time_s
        / baselines::simulate_baseline(&engine, &p2, &mvt2.nd, Baseline::Cpu).time_s;
    assert!(
        r2 < r1,
        "MVT2 must be relatively more GPU-friendly: mvt1 gpu/cpu {} vs mvt2 {}",
        r1,
        r2
    );
}

/// Table 6 discussion: co-execution with ALL resources behaves better on
/// Skylake (more bandwidth + shared LLC) than on Kaveri.
#[test]
fn skylake_tolerates_full_co_execution_better() {
    let mut ratios = Vec::new();
    for engine in [Engine::kaveri(), Engine::skylake()] {
        let mut mem = Memory::new();
        let built = workloads::polybench::gesummv(&mut mem, 16384, 256);
        let p = profile_of(&engine, &built, &mut mem);
        let all = baselines::simulate_baseline(&engine, &p, &built.nd, Baseline::All).time_s;
        // Oracle over the 44 configs.
        let sched = Schedule::Dynamic { chunk_divisor: 10 };
        let best = config_space(&engine.platform)
            .iter()
            .map(|pt| engine.simulate(&p, &built.nd, pt.dop(), sched, true).time_s)
            .fold(f64::INFINITY, f64::min);
        ratios.push(best / all);
    }
    assert!(
        ratios[1] > ratios[0],
        "ALL normalized perf: kaveri {} vs skylake {}",
        ratios[0],
        ratios[1]
    );
}

/// Section 6: the malleable kernel's overhead at full DoP is small — Dopia
/// does not tax kernels that end up using the whole GPU.
#[test]
fn malleable_overhead_is_bounded() {
    let engine = Engine::kaveri();
    let mut mem = Memory::new();
    let built = workloads::polybench::gesummv(&mut mem, 16384, 256);
    let p = profile_of(&engine, &built, &mut mem);
    let sched = Schedule::Dynamic { chunk_divisor: 10 };
    let dop = DopConfig { cpu_cores: 0, gpu_frac: 1.0 };
    let plain = engine.simulate(&p, &built.nd, dop, sched, false).time_s;
    let malleable = engine.simulate(&p, &built.nd, dop, sched, true).time_s;
    assert!(malleable >= plain);
    assert!(malleable / plain < 1.15, "overhead ratio {}", malleable / plain);
}

/// Determinism across the whole stack: identical inputs produce identical
/// simulated results, bit for bit.
#[test]
fn full_stack_is_deterministic() {
    let run_once = || {
        let engine = Engine::kaveri();
        let mut mem = Memory::new();
        let built = workloads::spmv::spmv_csr(&mut mem, 8192, 256);
        let p = profile_of(&engine, &built, &mut mem);
        let r = engine.simulate(
            &p,
            &built.nd,
            DopConfig { cpu_cores: 3, gpu_frac: 0.375 },
            Schedule::Dynamic { chunk_divisor: 10 },
            true,
        );
        (r.time_s, r.dram_bytes, r.cpu_groups, r.gpu_groups)
    };
    assert_eq!(run_once(), run_once());
}
