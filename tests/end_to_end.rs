//! Cross-crate integration: the full Dopia pipeline — compile, analyze,
//! rewrite, predict, co-execute — over real kernels on both platforms.

use dopia::prelude::*;
use std::sync::OnceLock;

/// Training is the expensive part of these tests; share one runtime per
/// platform across the whole binary.
fn trained(engine: Engine) -> &'static Dopia {
    static KAVERI: OnceLock<Dopia> = OnceLock::new();
    static SKYLAKE: OnceLock<Dopia> = OnceLock::new();
    let slot = if engine.platform.name == "Kaveri" { &KAVERI } else { &SKYLAKE };
    slot.get_or_init(|| {
        let (data, _) = training::tiny_training_set(&engine);
        Dopia::new(engine, PerfModel::train(ModelKind::Dt, &data, 42))
    })
}

#[test]
fn dopia_manages_every_real_world_kernel() {
    for engine in [Engine::kaveri(), Engine::skylake()] {
        let dopia = trained(engine);
        let mut mem = Memory::new();
        // Moderate problem sizes keep the functional profiler quick.
        let suite = vec![
            workloads::polybench::gesummv(&mut mem, 4096, 256),
            workloads::polybench::atax2(&mut mem, 4096, 64),
            workloads::polybench::conv2d(&mut mem, 1024, [16, 16]),
            workloads::spmv::spmv_csr(&mut mem, 4096, 256),
        ];
        for built in &suite {
            let source = match built.name.as_str() {
                "Gesummv" => workloads::polybench::GESUMMV_SRC,
                "ATAX2" => workloads::polybench::ATAX2_SRC,
                "2DCONV" => workloads::polybench::CONV2D_SRC,
                "SpMV" => workloads::spmv::SPMV_SRC,
                other => panic!("unexpected kernel {}", other),
            };
            let program = dopia.create_program_with_source(source).unwrap();
            let result = dopia
                .enqueue_nd_range_kernel(
                    &program,
                    &built.kernel.name,
                    &built.args,
                    built.nd,
                    &mut mem,
                )
                .unwrap_or_else(|e| panic!("{}: {}", built.name, e));
            assert!(
                result.kernel_time_s > 0.0 && result.kernel_time_s.is_finite(),
                "{}",
                built.name
            );
            assert_eq!(
                result.report.cpu_groups + result.report.gpu_groups,
                built.nd.num_groups(),
                "{} lost work-groups",
                built.name
            );
            assert!(result.total_time_s >= result.kernel_time_s);
            // The selection must be one of the 44 valid points.
            assert!(result.selection.index < dopia.space().len());
            let p = result.selection.point;
            assert!(p.cpu_cores > 0 || p.gpu_eighths > 0);
        }
    }
}

#[test]
fn dopia_beats_the_worst_baseline_everywhere_and_is_competitive() {
    // On each kernel, Dopia's pick (including overhead) must beat the worst
    // static mode clearly, and stay within 2x of the best static mode
    // (Section 9.4's qualitative claim: Dopia outperforms or matches the
    // static configurations in most cases).
    let engine = Engine::kaveri();
    let dopia = trained(engine);
    let mut mem = Memory::new();
    let suite = vec![
        workloads::polybench::gesummv(&mut mem, 8192, 256),
        workloads::polybench::mvt1(&mut mem, 8192, 256),
        workloads::spmv::spmv_csr(&mut mem, 8192, 256),
    ];
    for built in &suite {
        let source = match built.name.as_str() {
            "Gesummv" => workloads::polybench::GESUMMV_SRC,
            "MVT1" => workloads::polybench::MVT1_SRC,
            "SpMV" => workloads::spmv::SPMV_SRC,
            other => panic!("unexpected kernel {}", other),
        };
        let program = dopia.create_program_with_source(source).unwrap();
        let prepared = program.kernel(&built.kernel.name).unwrap();
        let profile = dopia.profile(prepared, &built.args, built.nd, &mut mem).unwrap();
        let run = dopia.launch_with_profile(prepared, &profile, built.nd);
        let times: Vec<f64> = Baseline::all()
            .iter()
            .map(|&b| baselines::simulate_baseline(dopia.engine(), &profile, &built.nd, b).time_s)
            .collect();
        let worst = times.iter().cloned().fold(0.0, f64::max);
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            run.total_time_s < worst,
            "{}: dopia {} vs worst baseline {}",
            built.name,
            run.total_time_s,
            worst
        );
        // A sub-grid-trained model occasionally mispredicts on GPU-cliff
        // kernels (the paper's MVT2 phenomenon); full-grid training (the
        // bench binaries) lands within ~10% of the best baseline.
        assert!(
            run.total_time_s < best * 3.0,
            "{}: dopia {} vs best baseline {}",
            built.name,
            run.total_time_s,
            best
        );
    }
}

#[test]
fn per_launch_inference_overhead_is_micro_scale_for_dt() {
    let engine = Engine::kaveri();
    let dopia = trained(engine);
    let program = dopia
        .create_program_with_source(workloads::polybench::GESUMMV_SRC)
        .unwrap();
    let prepared = program.kernel("gesummv").unwrap();
    let mut mem = Memory::new();
    let built = workloads::polybench::gesummv(&mut mem, 4096, 256);
    let profile = dopia.profile(prepared, &built.args, built.nd, &mut mem).unwrap();
    let run = dopia.launch_with_profile(prepared, &profile, built.nd);
    // The DT sweep over 44 configs must cost well under a millisecond —
    // the property that lets Dopia default to DT (paper Section 9.2).
    assert!(
        run.selection.inference_s < 1e-3,
        "DT inference took {}s",
        run.selection.inference_s
    );
}

#[test]
fn platforms_disagree_on_configs_sometimes() {
    // The model is per-platform; the two engines must be able to choose
    // different DoPs for the same kernel (Skylake tolerates more GPU).
    let kav = trained(Engine::kaveri());
    let sky = trained(Engine::skylake());
    let mut mem = Memory::new();
    let built = workloads::polybench::gesummv(&mut mem, 8192, 256);
    let pk = kav.create_program_with_source(workloads::polybench::GESUMMV_SRC).unwrap();
    let ps = sky.create_program_with_source(workloads::polybench::GESUMMV_SRC).unwrap();
    let rk = kav
        .enqueue_nd_range_kernel(&pk, "gesummv", &built.args, built.nd, &mut mem)
        .unwrap();
    let rs = sky
        .enqueue_nd_range_kernel(&ps, "gesummv", &built.args, built.nd, &mut mem)
        .unwrap();
    // Not asserting inequality of picks (both may be optimal at the same
    // normalized point) — but both must be sane and the simulated times
    // must differ (different hardware).
    assert_ne!(rk.kernel_time_s, rs.kernel_time_s);
}
