//! Property-based tests of the compiler frontend: the printer is a fixed
//! point, generated synthetic kernels always compile, and feature
//! extraction is total over the workload space.

use dopia::core::features::extract_code_features;
use proptest::prelude::*;
use workloads::synthetic::{parse_pattern, DType, SyntheticParams, PATTERN_NAMES};

fn arb_params() -> impl Strategy<Value = SyntheticParams> {
    (
        0usize..PATTERN_NAMES.len(),
        prop_oneof![Just(0usize), Just(1), Just(2), Just(3), Just(4)],
        1usize..=2,
        prop_oneof![Just(DType::F32), Just(DType::I32)],
        prop_oneof![Just(64usize), Just(256), Just(1024)],
        prop_oneof![Just(16usize), Just(64)],
    )
        .prop_map(|(pi, gamma, dim, dtype, size, wg)| SyntheticParams {
            pattern: parse_pattern(PATTERN_NAMES[pi]).unwrap(),
            gamma,
            dim,
            dtype,
            size,
            wg,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(compile(src)) reparses to the same printed form (printer is a
    /// fixed point) for every generated kernel.
    #[test]
    fn printer_is_fixed_point_on_generated_kernels(params in arb_params()) {
        let src = params.source();
        let program = clc::compile(&src).unwrap();
        let printed = clc::printer::print_program(&program);
        let reparsed = clc::compile(&printed)
            .unwrap_or_else(|e| panic!("{}: {}\n{}", params.name(), e, printed));
        prop_assert_eq!(printed.clone(), clc::printer::print_program(&reparsed));
    }

    /// Feature extraction is total and consistent with the pattern's
    /// modifier counts.
    #[test]
    fn features_match_pattern_modifiers(params in arb_params()) {
        let program = clc::compile(&params.source()).unwrap();
        let f = extract_code_features(&program.kernels[0]);
        let p = &params.pattern;
        prop_assert_eq!(f.mem_random, p.epsilon as u32, "{:?} for {}", f, params.name());
        prop_assert_eq!(f.mem_constant, p.theta as u32, "{:?} for {}", f, params.name());
        prop_assert_eq!(f.mem_stride, p.delta as u32, "{:?} for {}", f, params.name());
        // All terms + the output store + the indirection array read are
        // memory ops; continuous = everything not claimed by a modifier.
        let terms = p.term_kinds().len() as u32;
        let idx_reads = if p.epsilon > 0 { p.epsilon as u32 } else { 0 };
        let expected_total = terms + 1 + idx_reads;
        prop_assert_eq!(f.mem_total(), expected_total, "{:?} for {}", f, params.name());
        // Data type drives the arithmetic class of the term math.
        match params.dtype {
            DType::F32 => prop_assert!(f.arith_float >= terms.saturating_sub(1)),
            DType::I32 => prop_assert!(f.arith_float == 0, "{:?}", f),
        }
    }

    /// The profiler never fails on any synthetic workload and reports
    /// plausible magnitudes.
    #[test]
    fn profiler_is_total_over_synthetic_space(params in arb_params()) {
        let engine = sim::Engine::kaveri();
        let mut mem = sim::Memory::new();
        let built = params.build(&mut mem, 99);
        let profile = engine.profile(built.spec(), &mut mem).unwrap();
        let inner: f64 = params.shape()[params.dim..].iter().product::<usize>() as f64;
        // Each term makes ~inner accesses per item (plus the OUT store).
        let per_item = profile.accesses_per_item();
        prop_assert!(per_item >= inner * 0.9, "{}: {} accesses", params.name(), per_item);
        prop_assert!(profile.divergence >= 1.0);
    }
}
