//! Property-based validation of Dopia's malleable-kernel transform
//! (paper Section 6): for *any* synthetic workload shape and *any* valid
//! throttle level, the malleable GPU kernel must compute exactly what the
//! original computes.

use dopia::core::codegen::transform_malleable;
use proptest::prelude::*;
use sim::interp::{run_kernel, ExecOptions, NullTracer};
use sim::{ArgValue, Memory};
use workloads::synthetic::{DType, SyntheticParams, PATTERN_NAMES};

/// Build a *small, real-buffer* instance of a synthetic workload so the
/// functional interpreter can verify outputs byte-for-byte.
fn build_real(params: &SyntheticParams, seed: u64) -> (Memory, Vec<ArgValue>, usize) {
    let mut mem = Memory::new();
    let total = params.total_elems();
    let kinds = params.pattern.term_kinds();
    let mut args = Vec::new();
    // OUT
    let out = mem.alloc_f32(vec![0.0; total]);
    args.push(ArgValue::Buffer(out));
    for t in 0..kinds.len() {
        let data: Vec<f32> = (0..total)
            .map(|i| ((i as u64 ^ seed ^ t as u64) % 97) as f32 * 0.25)
            .collect();
        args.push(ArgValue::Buffer(mem.alloc_f32(data)));
    }
    if params.pattern.epsilon > 0 {
        let idx: Vec<i32> = (0..total)
            .map(|i| (((i as u64).wrapping_mul(2654435761) ^ seed) % total as u64) as i32)
            .collect();
        args.push(ArgValue::Buffer(mem.alloc_i32(idx)));
    }
    for &n in &params.shape() {
        args.push(ArgValue::Int(n as i64));
    }
    for g in 0..params.gamma {
        args.push(ArgValue::Float(1.0 + g as f32 * 0.25));
    }
    if params.pattern.theta > 0 {
        args.push(ArgValue::Int(3));
    }
    (mem, args, out.0)
}

fn run_and_read(
    kernel: &clc::Kernel,
    params: &SyntheticParams,
    extra: &[ArgValue],
    seed: u64,
) -> Vec<f32> {
    let (mut mem, mut args, out_idx) = build_real(params, seed);
    args.extend_from_slice(extra);
    run_kernel(
        kernel,
        &args,
        &params.nd_range(),
        &mut mem,
        &ExecOptions::default(),
        &mut NullTracer,
    )
    .unwrap_or_else(|e| panic!("{}: {}", params.name(), e));
    mem.read_f32(sim::BufferId(out_idx)).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every synthetic pattern, in both launch dimensionalities, with a
    /// random throttle level, is semantics-preserving under the malleable
    /// transform.
    #[test]
    fn malleable_transform_preserves_semantics(
        pattern_idx in 0usize..PATTERN_NAMES.len(),
        dim in 1usize..=2,
        gamma in prop_oneof![Just(0usize), Just(2), Just(4)],
        dop_alloc in 1i64..=8,
        seed in 0u64..1000,
    ) {
        let pattern = workloads::synthetic::parse_pattern(PATTERN_NAMES[pattern_idx]).unwrap();
        let params = SyntheticParams {
            pattern,
            gamma,
            dim,
            dtype: DType::F32,
            size: 64, // small: full functional execution
            wg: 16,
        };
        let program = clc::compile(&params.source()).unwrap();
        let original = &program.kernels[0];
        let malleable = transform_malleable(original, dim).unwrap();

        let expected = run_and_read(original, &params, &[], seed);
        let got = run_and_read(
            &malleable,
            &params,
            &[ArgValue::Int(8), ArgValue::Int(dop_alloc)],
            seed,
        );
        prop_assert_eq!(expected, got);
    }

    /// The transformed kernel's printed source always recompiles.
    #[test]
    fn malleable_output_recompiles(
        pattern_idx in 0usize..PATTERN_NAMES.len(),
        dim in 1usize..=2,
    ) {
        let pattern = workloads::synthetic::parse_pattern(PATTERN_NAMES[pattern_idx]).unwrap();
        let params = SyntheticParams {
            pattern,
            gamma: 2,
            dim,
            dtype: DType::F32,
            size: 64,
            wg: 16,
        };
        let program = clc::compile(&params.source()).unwrap();
        let malleable = transform_malleable(&program.kernels[0], dim).unwrap();
        let printed = clc::printer::print_kernel(&malleable);
        prop_assert!(clc::compile(&printed).is_ok(), "reprinted source failed:\n{}", printed);
    }
}

/// Non-property sanity: the degenerate throttle (1 lane of 64) still
/// completes the whole group.
#[test]
fn single_active_lane_completes_group() {
    let params = SyntheticParams {
        pattern: workloads::synthetic::parse_pattern("2mat3d").unwrap(),
        gamma: 0,
        dim: 1,
        dtype: DType::F32,
        size: 64,
        wg: 64,
    };
    let program = clc::compile(&params.source()).unwrap();
    let malleable = transform_malleable(&program.kernels[0], 1).unwrap();
    let expected = run_and_read(&program.kernels[0], &params, &[], 5);
    let got = run_and_read(&malleable, &params, &[ArgValue::Int(64), ArgValue::Int(1)], 5);
    assert_eq!(expected, got);
}
