//! End-to-end acceptance tests for the self-healing supervision layer:
//! device circuit breakers, deadline-based straggler re-dispatch, and
//! model quarantine — each demonstrated against its non-supervised
//! counterpart.

use dopia::core::BreakerState;
use dopia::ml::Regressor;
use dopia::prelude::*;

/// A regressor that always prefers the GPU alone at full DoP (predictions
/// for any CPU-involving config come out negative and are discarded).
/// Under a persistent GPU fault this is the worst possible model — every
/// launch puts all its work on the broken device.
struct GpuOnly;

impl Regressor for GpuOnly {
    fn predict(&self, row: &[f64]) -> f64 {
        // row[9] = cpu_util, row[10] = gpu_util (Table 1 order).
        row[10] - row[9]
    }
    fn name(&self) -> &'static str {
        "gpuonly"
    }
}

/// A regressor preferring full co-execution: CPU survivors exist on every
/// launch.
struct CoExec;

impl Regressor for CoExec {
    fn predict(&self, row: &[f64]) -> f64 {
        0.6 * row[9] + 0.4 * row[10]
    }
    fn name(&self) -> &'static str {
        "coexec"
    }
}

/// A regressor whose predictions are valid (finite, positive) but wildly
/// wrong: it claims every configuration achieves 1% of the best.
struct Overconfident;

impl Regressor for Overconfident {
    fn predict(&self, _row: &[f64]) -> f64 {
        0.01
    }
    fn name(&self) -> &'static str {
        "overconfident"
    }
}

fn dopia_with(model: Box<dyn Regressor>) -> Dopia {
    Dopia::new(Engine::kaveri(), PerfModel::from_regressor(ModelKind::Lin, model))
}

fn gesummv_launch(dopia: &Dopia, n: usize) -> (Program, Memory, Vec<ArgValue>, NdRange) {
    let program = dopia
        .create_program_with_source(workloads::polybench::GESUMMV_SRC)
        .unwrap();
    let mut mem = Memory::new();
    let built = workloads::polybench::gesummv(&mut mem, n, 256);
    (program, mem, built.args, built.nd)
}

/// The tentpole acceptance scenario. A GPU-preferring model meets a GPU
/// that hangs on every launch: without help, every launch loses all its
/// work. The circuit breaker trips within `breaker_threshold` launches,
/// pins subsequent launches to the CPU's static config (zero loss), and
/// a half-open probe re-checks the device after the cooldown.
#[test]
fn breaker_trips_and_pins_to_cpu_under_persistent_gpu_fault() {
    let mut dopia = dopia_with(Box::new(GpuOnly));
    dopia.set_supervision_config(SupervisionConfig {
        breaker_threshold: 2,
        breaker_cooldown: 4,
        ..SupervisionConfig::default()
    });
    dopia.set_fault_plan(FaultPlan {
        gpu_hang_at_dispatch: Some(0),
        ..FaultPlan::default()
    });
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);
    let total = nd.num_groups();

    // Launches until the trip: GPU-only selections, everything lost.
    let mut trips = 0;
    for i in 0..2 {
        let r = dopia
            .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
            .unwrap();
        assert_eq!(r.selection.point.cpu_cores, 0, "model wants the GPU alone");
        assert_eq!(r.report.lost_groups, total, "launch {} loses everything", i);
        assert!(r.report.gpu_faulted);
        trips += r.health.breaker_trips;
    }
    assert_eq!(trips, 1, "breaker trips within breaker_threshold launches");
    assert!(matches!(
        dopia.supervision_stats().gpu_breaker,
        BreakerState::Open { .. }
    ));

    // Cooldown launches: pinned to the CPU's static config, zero loss.
    for _ in 0..4 {
        let r = dopia
            .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
            .unwrap();
        assert_eq!(r.health.breaker_pinned_launches, 1);
        assert_eq!(r.report.lost_groups, 0, "pinned launches lose nothing");
        assert_eq!(r.report.cpu_groups, total, "all work on the CPU");
        assert_eq!(r.report.gpu_groups, 0);
        assert!(!r.report.degraded);
        assert!(r.selection.point.cpu_cores > 0);
        assert_eq!(r.selection.point.gpu_eighths, 0);
    }

    // Cooldown spent: the next launch probes the GPU, which is still
    // broken — the breaker re-opens on the failed probe alone.
    let probe = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert_eq!(probe.health.breaker_pinned_launches, 0, "probe runs the model's pick");
    assert!(probe.report.gpu_faulted);
    assert_eq!(probe.health.breaker_trips, 1, "failed probe re-trips immediately");
    assert!(matches!(
        dopia.supervision_stats().gpu_breaker,
        BreakerState::Open { .. }
    ));
    assert_eq!(dopia.supervision_stats().breaker_trips, 2);

    // And the launch right after the failed probe is pinned again.
    let r = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert_eq!(r.health.breaker_pinned_launches, 1);
    assert_eq!(r.report.lost_groups, 0);
}

/// The control arm: with supervision disabled the same fault keeps losing
/// every launch's work, forever.
#[test]
fn without_supervision_losses_continue_indefinitely() {
    let mut dopia = dopia_with(Box::new(GpuOnly));
    dopia.set_supervision_config(SupervisionConfig {
        enabled: false,
        ..SupervisionConfig::default()
    });
    dopia.set_fault_plan(FaultPlan {
        gpu_hang_at_dispatch: Some(0),
        ..FaultPlan::default()
    });
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);
    for i in 0..6 {
        let r = dopia
            .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
            .unwrap();
        assert_eq!(
            r.report.lost_groups,
            nd.num_groups(),
            "unsupervised launch {} still loses everything",
            i
        );
        assert_eq!(r.health.breaker_trips, 0);
        assert_eq!(r.health.breaker_pinned_launches, 0);
    }
    assert_eq!(dopia.supervision_stats().breaker_trips, 0);
}

/// Straggler re-dispatch: a hung GPU chunk whose watchdog is too slow to
/// matter is reclaimed by the launch deadline (budgeted from the kernel
/// class's observed history) and finished by the CPU — no loss, and far
/// faster than waiting for the watchdog.
#[test]
fn deadline_redispatches_stragglers_when_watchdog_is_slow() {
    let dopia = dopia_with(Box::new(CoExec));
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);
    let total = nd.num_groups();

    // Warm up the kernel class fault-free: the supervisor needs launch
    // history to budget a deadline.
    for _ in 0..2 {
        let r = dopia
            .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
            .unwrap();
        assert!(r.health.is_nominal());
    }

    // Now the GPU hangs, and the watchdog would take 5 simulated seconds
    // to notice — milliseconds of work would sit hung for seconds.
    let mut dopia = dopia;
    dopia.set_fault_plan(FaultPlan {
        gpu_hang_at_dispatch: Some(0),
        watchdog_timeout_s: Some(5.0),
        ..FaultPlan::default()
    });
    let r = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert!(r.report.redispatched_groups > 0, "{:?}", r.report);
    assert_eq!(r.report.lost_groups, 0);
    assert_eq!(
        r.report.cpu_groups
            + r.report.gpu_groups
            + r.report.recovered_groups
            + r.report.redispatched_groups,
        total
    );
    assert!(r.report.gpu_faulted);
    assert_eq!(r.health.redispatched_groups as usize, r.report.redispatched_groups);
    assert!(!r.health.is_nominal());
    assert!(
        r.report.time_s < 1.0,
        "deadline re-dispatch must beat the {}s watchdog: took {}s",
        5.0,
        r.report.time_s
    );
}

/// Model quarantine: persistently wrong (but valid-looking) predictions
/// push the misprediction EWMA over the threshold; the model is benched,
/// its cached decisions are invalidated, and the feature heuristic serves
/// the kernel — without ever consulting or polluting the launch cache.
#[test]
fn wrong_model_is_quarantined_and_heuristic_takes_over() {
    let dopia = dopia_with(Box::new(Overconfident));
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);

    // Three launches of identical time: measured normalized perf is 1.0,
    // the model says 0.01 — relative error ~0.99 every launch.
    let mut quarantines = 0;
    for _ in 0..3 {
        let r = dopia
            .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
            .unwrap();
        assert!(!r.selection.fallback, "predictions are valid, just wrong");
        quarantines += r.health.model_quarantines;
    }
    assert_eq!(quarantines, 1, "quarantine within quarantine_min_samples launches");
    assert_eq!(dopia.supervision_stats().quarantined_kernels, 1);
    assert!(
        dopia.cache_stats().invalidations >= 1,
        "cached decisions from the distrusted model are dropped"
    );

    // Quarantined launches run the feature heuristic and bypass the cache
    // in both directions.
    let before = dopia.cache_stats();
    let r = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert_eq!(r.health.quarantined_launches, 1);
    assert!(r.selection.fallback, "heuristic selections are flagged");
    assert!(r.selection.predicted.is_nan());
    assert_eq!(r.health.prediction_fallbacks, 0, "healing, not a broken model");
    assert_eq!(r.report.lost_groups, 0);
    let after = dopia.cache_stats();
    assert_eq!(after.hits, before.hits, "cache never consulted while quarantined");
    assert_eq!(after.misses, before.misses);
}

/// Breaker-pinned launches must not poison the decision cache: once the
/// fault clears and the breaker closes, the next launch re-runs the model,
/// not a frozen CPU-only pin.
#[test]
fn pinned_decisions_are_never_cached() {
    let mut dopia = dopia_with(Box::new(GpuOnly));
    dopia.set_supervision_config(SupervisionConfig {
        breaker_threshold: 1,
        breaker_cooldown: 2,
        ..SupervisionConfig::default()
    });
    dopia.set_fault_plan(FaultPlan {
        gpu_hang_at_dispatch: Some(0),
        ..FaultPlan::default()
    });
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);

    // Trip the breaker (threshold 1), then run pinned launches through the
    // cooldown.
    let r = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert_eq!(r.health.breaker_trips, 1);
    let cache_before = dopia.cache_stats();
    for _ in 0..2 {
        let r = dopia
            .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
            .unwrap();
        assert_eq!(r.health.breaker_pinned_launches, 1);
    }
    let cache_after = dopia.cache_stats();
    assert_eq!(cache_after.hits, cache_before.hits, "pinned launches bypass the cache");
    assert_eq!(cache_after.misses, cache_before.misses);

    // Heal the GPU. The probe launch re-runs the model (GPU-only again),
    // succeeds, closes the breaker — proving no CPU-only pin was frozen
    // into the cache.
    dopia.clear_fault_plan();
    let probe = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert_eq!(probe.health.breaker_pinned_launches, 0);
    assert_eq!(probe.selection.point.cpu_cores, 0, "model's own pick is back");
    assert_eq!(probe.selection.point.gpu_eighths, 8);
    assert_eq!(probe.report.lost_groups, 0);
    assert_eq!(dopia.supervision_stats().gpu_breaker, BreakerState::Closed);
}

/// The supervision counters aggregate across a command queue like every
/// other health counter.
#[test]
fn queue_summary_aggregates_supervision_counters() {
    let mut dopia = dopia_with(Box::new(GpuOnly));
    dopia.set_supervision_config(SupervisionConfig {
        breaker_threshold: 2,
        breaker_cooldown: 8,
        ..SupervisionConfig::default()
    });
    dopia.set_fault_plan(FaultPlan {
        gpu_hang_at_dispatch: Some(0),
        ..FaultPlan::default()
    });
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);
    let mut queue = CommandQueue::new(&dopia);
    for _ in 0..5 {
        queue
            .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
            .unwrap();
    }
    let summary = queue.finish();
    assert_eq!(summary.health.breaker_trips, 1);
    assert_eq!(summary.health.breaker_pinned_launches, 3, "launches 3-5 pinned");
    assert!(!summary.health.is_nominal());
}
