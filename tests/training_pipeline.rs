//! Integration of the offline training pipeline: grid measurement →
//! dataset → model → selection quality, on a reduced grid.

use dopia::prelude::*;
use dopia_core::configs;
use dopia_core::training::{self, TrainingOptions};
use workloads::synthetic::SyntheticParams;

fn reduced_grid(step: usize) -> Vec<SyntheticParams> {
    workloads::synthetic::training_grid().into_iter().step_by(step).collect()
}

#[test]
fn trained_model_beats_static_baselines_in_aggregate() {
    let engine = Engine::kaveri();
    let space = configs::config_space(&engine.platform);
    let grid = reduced_grid(30); // ~41 workloads
    let records = training::run_grid(&engine, &grid, &space, &TrainingOptions::default());

    // Hold out every 5th workload; train on the rest.
    let (test_idx, train_idx): (Vec<usize>, Vec<usize>) =
        (0..records.len()).partition(|i| i % 5 == 0);
    let train_records: Vec<_> = train_idx.iter().map(|&i| records[i].clone()).collect();
    let dataset = training::dataset_from_records(&train_records, &space);
    let model = PerfModel::train(ModelKind::Dt, &dataset, 3);

    let max = engine.platform.cpu.cores;
    let mut dopia_perf = 0.0;
    let mut base_perf = [0.0f64; 3];
    for &i in &test_idx {
        let r = &records[i];
        let sel = model.select_config(r.code, r.work_dim, r.global_size, r.local_size, &space);
        dopia_perf += r.normalized_perf(sel.index);
        for (k, b) in Baseline::all().iter().enumerate() {
            base_perf[k] += r.normalized_perf(b.config_index(&space, max));
        }
    }
    let n = test_idx.len() as f64;
    dopia_perf /= n;
    for b in &mut base_perf {
        *b /= n;
    }
    assert!(
        base_perf.iter().all(|&b| dopia_perf > b),
        "dopia {} vs baselines {:?}",
        dopia_perf,
        base_perf
    );
    assert!(dopia_perf > 0.8, "dopia aggregate {}", dopia_perf);
}

#[test]
fn normalized_performance_is_well_formed() {
    let engine = Engine::skylake();
    let space = configs::config_space(&engine.platform);
    let grid = reduced_grid(120);
    let records = training::run_grid(&engine, &grid, &space, &TrainingOptions::default());
    for r in &records {
        assert_eq!(r.times.len(), space.len(), "{}", r.name);
        let best = r.times[r.best_index];
        assert!(r.times.iter().all(|&t| t >= best), "{}", r.name);
        assert!((r.normalized_perf(r.best_index) - 1.0).abs() < 1e-12);
        // Feature rows must be finite.
        for p in &space {
            assert!(r.feature_vector(p).to_row().iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn leave_one_out_excludes_exactly_one_workload() {
    let engine = Engine::kaveri();
    let space = configs::config_space(&engine.platform);
    let grid = reduced_grid(200);
    let records = training::run_grid(&engine, &grid, &space, &TrainingOptions::default());
    let full = training::dataset_from_records(&records, &space);
    let loo = training::dataset_excluding(&records, &space, &records[2].name);
    assert_eq!(loo.len(), full.len() - space.len());
}

#[test]
fn oracle_helpers_are_consistent_with_records() {
    use dopia_core::oracle;
    let engine = Engine::kaveri();
    let space = configs::config_space(&engine.platform);
    let grid = reduced_grid(300);
    let records = training::run_grid(&engine, &grid, &space, &TrainingOptions::default());
    for r in &records {
        let choice = oracle::oracle_choice(r, &space);
        assert_eq!(choice.index, r.best_index);
        assert_eq!(choice.time_s, r.times[r.best_index]);
        assert_eq!(oracle::euclidean_error(r, &space, r.best_index), 0.0);
        // Adding overhead always reduces normalized performance.
        let with_overhead = oracle::time_vs_oracle(r, r.times[r.best_index] * 1.5);
        assert!((with_overhead - 2.0 / 3.0).abs() < 1e-12);
    }
}
