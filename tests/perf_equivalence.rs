//! The fast-path equivalence contract (DESIGN.md §8).
//!
//! The batched DES fast path must be observationally equivalent to the
//! exact per-agent event loop on every fault-free `Dynamic`/`Static` run:
//! identical work-group counts (exact) and times within 1e-9 relative
//! (floating-point residue micro-events in the exact loop produce ~1e-16
//! deviations; anything larger is a logic divergence). These tests pin the
//! contract adversarially over randomized inputs, over the full 44-point
//! configuration space of a profiled kernel, and at the chunk-divisor
//! boundary cases.

use dopia_core::configs::config_space;
use proptest::prelude::*;
use sim::des::{fast_path_applies, run_des, run_des_exact, DesInput, GpuAgentParams, Schedule};
use sim::cost::GroupCost;
use sim::fault::FaultPlan;
use sim::{ArgValue, Engine, Memory, NdRange};

/// Relative tolerance of the equivalence contract.
const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

fn assert_equivalent(input: &DesInput) {
    let exact = run_des_exact(input);
    let fast = run_des(input);
    assert_eq!(fast.cpu_groups, exact.cpu_groups, "cpu_groups {:?}", input.schedule);
    assert_eq!(fast.gpu_groups, exact.gpu_groups, "gpu_groups {:?}", input.schedule);
    assert!(
        close(fast.time_s, exact.time_s),
        "time fast {} vs exact {} ({:?})",
        fast.time_s,
        exact.time_s,
        input.schedule
    );
    assert!(
        close(fast.dram_bytes, exact.dram_bytes),
        "dram fast {} vs exact {}",
        fast.dram_bytes,
        exact.dram_bytes
    );
    assert!(
        close(fast.cpu_busy_s, exact.cpu_busy_s),
        "cpu_busy fast {} vs exact {}",
        fast.cpu_busy_s,
        exact.cpu_busy_s
    );
    assert!(
        close(fast.gpu_busy_s, exact.gpu_busy_s),
        "gpu_busy fast {} vs exact {}",
        fast.gpu_busy_s,
        exact.gpu_busy_s
    );
}

fn arb_cost() -> impl Strategy<Value = GroupCost> {
    (1e-7f64..1e-2, 0.0f64..1e7, 1.0f64..25.0, 0.4f64..=1.0).prop_map(
        |(compute_s, dram_bytes, bw_cap_gbs, dram_efficiency)| GroupCost {
            compute_s,
            dram_bytes,
            bw_cap_gbs,
            dram_efficiency,
        },
    )
}

fn arb_fast_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        (1usize..120).prop_map(|d| Schedule::Dynamic { chunk_divisor: d }),
        (0.0f64..=1.0).prop_map(|f| Schedule::Static { cpu_fraction: f }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The contract over randomized inputs: every fault-free Dynamic or
    /// Static run must take the fast path and reproduce the exact loop.
    #[test]
    fn fast_path_matches_exact_des(
        num_groups in 0usize..400,
        cpu_cores in 0usize..6,
        cpu_cost in arb_cost(),
        gpu_cost in arb_cost(),
        cus in 1usize..16,
        latency in 0.0f64..1e-3,
        with_gpu in any::<bool>(),
        schedule in arb_fast_schedule(),
        bw in 5.0f64..40.0,
    ) {
        prop_assume!(cpu_cores > 0 || with_gpu);
        let input = DesInput {
            num_groups,
            cpu_cores,
            cpu_cost: if cpu_cores > 0 { Some(cpu_cost) } else { None },
            gpu: if with_gpu {
                Some(GpuAgentParams { cost: gpu_cost, cus, launch_latency_s: latency })
            } else {
                None
            },
            schedule,
            dram_bw_gbs: bw,
        };
        prop_assert!(fast_path_applies(&input, &FaultPlan::none()));
        assert_equivalent(&input);
    }

    /// Zero-cost degenerate groups (no compute, no bytes) exercise the
    /// zero-duration-round batching; they must stay equivalent too.
    #[test]
    fn fast_path_matches_exact_with_zero_cost_groups(
        num_groups in 0usize..200,
        cpu_cores in 1usize..6,
        with_gpu in any::<bool>(),
        chunk_divisor in 1usize..50,
        bw in 5.0f64..40.0,
    ) {
        let zero = GroupCost {
            compute_s: 0.0,
            dram_bytes: 0.0,
            bw_cap_gbs: 10.0,
            dram_efficiency: 1.0,
        };
        let input = DesInput {
            num_groups,
            cpu_cores,
            cpu_cost: Some(zero),
            gpu: with_gpu.then_some(GpuAgentParams {
                cost: zero,
                cus: 8,
                launch_latency_s: 20e-6,
            }),
            schedule: Schedule::Dynamic { chunk_divisor },
            dram_bw_gbs: bw,
        };
        assert_equivalent(&input);
    }
}

/// DynamicPull and fault-affected runs must not take the fast path: the
/// dispatcher has to return the exact loop's result bit-for-bit.
#[test]
fn non_fast_inputs_fall_back_to_the_exact_loop() {
    let cost = GroupCost {
        compute_s: 1e-4,
        dram_bytes: 5e4,
        bw_cap_gbs: 12.0,
        dram_efficiency: 0.8,
    };
    let mut input = DesInput {
        num_groups: 137,
        cpu_cores: 3,
        cpu_cost: Some(cost),
        gpu: Some(GpuAgentParams { cost, cus: 8, launch_latency_s: 20e-6 }),
        schedule: Schedule::DynamicPull,
        dram_bw_gbs: 25.6,
    };
    let none = FaultPlan::none();
    assert!(!fast_path_applies(&input, &none));
    let exact = run_des_exact(&input);
    let dispatched = run_des(&input);
    assert_eq!(dispatched, exact, "DynamicPull must be bit-identical");

    input.schedule = Schedule::Dynamic { chunk_divisor: 10 };
    let hang = FaultPlan { gpu_hang_at_dispatch: Some(1), ..FaultPlan::default() };
    assert!(hang.affects_des());
    assert!(!fast_path_applies(&input, &hang));
}

fn profiled_gesummv(engine: &Engine, n: usize) -> (sim::KernelProfile, NdRange) {
    let kernel = clc::compile(
        "__kernel void gesummv(__global float* A, __global float* B, __global float* x,
                               __global float* y, float alpha, float beta, int N) {
            int i = get_global_id(0);
            if (i < N) {
                float t = 0.0f;
                float s = 0.0f;
                for (int j = 0; j < N; j++) {
                    t = t + A[i * N + j] * x[j];
                    s = s + B[i * N + j] * x[j];
                }
                y[i] = alpha * t + beta * s;
            }
        }",
    )
    .unwrap()
    .kernels
    .remove(0);
    let mut mem = Memory::new();
    let a = mem.alloc_virtual_f32(n * n, 1);
    let b = mem.alloc_virtual_f32(n * n, 2);
    let x = mem.alloc_f32(vec![1.0; n]);
    let y = mem.alloc_f32(vec![0.0; n]);
    let args = vec![
        ArgValue::Buffer(a),
        ArgValue::Buffer(b),
        ArgValue::Buffer(x),
        ArgValue::Buffer(y),
        ArgValue::Float(1.5),
        ArgValue::Float(2.5),
        ArgValue::Int(n as i64),
    ];
    let nd = NdRange::d1(n, 256);
    let spec = sim::LaunchSpec { kernel: &kernel, args: &args, nd };
    let profile = engine.profile(spec, &mut mem).unwrap();
    (profile, nd)
}

/// The full 44-point configuration space of a real profiled kernel, through
/// the public `Engine` API: `exact_des_only` vs the default dispatcher.
#[test]
fn all_44_configs_agree_between_fast_and_exact() {
    let mut fast_engine = Engine::kaveri();
    fast_engine.exact_des_only = false;
    let mut exact_engine = fast_engine.clone();
    exact_engine.exact_des_only = true;

    let space = config_space(&fast_engine.platform);
    assert_eq!(space.len(), 44);
    let (profile, nd) = profiled_gesummv(&fast_engine, 16384);

    for sched in [
        Schedule::Dynamic { chunk_divisor: 10 },
        Schedule::Static { cpu_fraction: 0.35 },
    ] {
        for point in &space {
            let fast = fast_engine.simulate(&profile, &nd, point.dop(), sched, true);
            let exact = exact_engine.simulate(&profile, &nd, point.dop(), sched, true);
            assert_eq!(fast.cpu_groups, exact.cpu_groups, "{:?} {:?}", point, sched);
            assert_eq!(fast.gpu_groups, exact.gpu_groups, "{:?} {:?}", point, sched);
            assert!(
                close(fast.time_s, exact.time_s),
                "{:?} {:?}: fast {} vs exact {}",
                point,
                sched,
                fast.time_s,
                exact.time_s
            );
            assert!(close(fast.dram_bytes, exact.dram_bytes), "{:?} {:?}", point, sched);
        }
    }
}

/// Chunk-divisor boundary cases: 1 (one giant chunk), num_groups (chunks of
/// one group), and divisors beyond num_groups (clamped to chunk size 1).
#[test]
fn chunk_divisor_edge_cases_stay_equivalent() {
    let cpu = GroupCost {
        compute_s: 2e-4,
        dram_bytes: 3e4,
        bw_cap_gbs: 8.0,
        dram_efficiency: 0.9,
    };
    let gpu = GroupCost {
        compute_s: 4e-5,
        dram_bytes: 6e4,
        bw_cap_gbs: 18.0,
        dram_efficiency: 0.7,
    };
    for num_groups in [1usize, 7, 64, 333] {
        for divisor in [1usize, num_groups, num_groups + 1, 10 * num_groups + 3] {
            for cores in [0usize, 1, 4] {
                let input = DesInput {
                    num_groups,
                    cpu_cores: cores,
                    cpu_cost: (cores > 0).then_some(cpu),
                    gpu: Some(GpuAgentParams {
                        cost: gpu,
                        cus: 8,
                        launch_latency_s: 20e-6,
                    }),
                    schedule: Schedule::Dynamic { chunk_divisor: divisor },
                    dram_bw_gbs: 25.6,
                };
                assert_equivalent(&input);
            }
        }
    }
}
