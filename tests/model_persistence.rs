//! Round-trip integration of the model persistence path: a production
//! deployment trains once (`train_model` binary), ships the `.model` file,
//! and the runtime loads it — selections must be identical to the
//! in-memory model's.

use dopia::prelude::*;

#[test]
fn persisted_models_reproduce_selections() {
    let engine = Engine::kaveri();
    let (dataset, records) = training::tiny_training_set(&engine);
    let space = config_space(&engine.platform);
    let dir = std::env::temp_dir().join("dopia_persist_test");
    std::fs::create_dir_all(&dir).unwrap();

    for kind in [ModelKind::Lin, ModelKind::Dt, ModelKind::Rf, ModelKind::Svr] {
        let (_, text) = ml::io::train_serialized(kind, &dataset, 7);
        let path = dir.join(format!("{}.model", kind.label()));
        std::fs::write(&path, &text).unwrap();

        let original = PerfModel::from_regressor(kind, ml::io::from_string(&text).unwrap().1);
        let loaded = PerfModel::load(&path).unwrap();
        assert_eq!(loaded.kind(), kind);

        for record in records.iter().take(10) {
            let a = original.select_config(
                record.code,
                record.work_dim,
                record.global_size,
                record.local_size,
                &space,
            );
            let b = loaded.select_config(
                record.code,
                record.work_dim,
                record.global_size,
                record.local_size,
                &space,
            );
            assert_eq!(a.index, b.index, "{} diverged on {}", kind.label(), record.name);
        }
    }
}

#[test]
fn loaded_model_drives_the_runtime() {
    let engine = Engine::kaveri();
    let (dataset, _) = training::tiny_training_set(&engine);
    let dir = std::env::temp_dir().join("dopia_persist_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dt.model");
    let (_, text) = ml::io::train_serialized(ModelKind::Dt, &dataset, 7);
    std::fs::write(&path, text).unwrap();

    let dopia = Dopia::new(engine, PerfModel::load(&path).unwrap());
    let program = dopia
        .create_program_with_source(workloads::polybench::GESUMMV_SRC)
        .unwrap();
    let mut mem = Memory::new();
    let built = workloads::polybench::gesummv(&mut mem, 4096, 256);
    let run = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &built.args, built.nd, &mut mem)
        .unwrap();
    assert_eq!(run.report.cpu_groups + run.report.gpu_groups, built.nd.num_groups());
}
