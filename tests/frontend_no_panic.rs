//! Fuzz harness: the compiler frontend must never panic, whatever bytes
//! it is fed. Malformed input is an `Err`, not a crash — a runtime that
//! promises to never fail a launch the hardware could still finish cannot
//! afford an abort inside `clBuildProgram`.
//!
//! Three generators:
//! 1. raw byte soup (UTF-8-lossy decoded),
//! 2. unicode char soup,
//! 3. structured mutations of real kernels (truncations, splices,
//!    deletions) — the inputs most likely to reach deep parser states.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Compile and report only whether the frontend panicked; the Ok/Err
/// outcome itself is irrelevant here.
fn compiles_without_panicking(src: &str) -> bool {
    catch_unwind(AssertUnwindSafe(|| {
        let _ = clc::compile(src);
    }))
    .is_ok()
}

/// Clamp an arbitrary index to a UTF-8 character boundary of `s`.
fn char_boundary(s: &str, idx: usize) -> usize {
    let mut i = idx.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// The real-kernel corpus the mutation tests start from.
fn corpus() -> Vec<&'static str> {
    vec![
        workloads::polybench::GESUMMV_SRC,
        workloads::polybench::ATAX1_SRC,
        workloads::polybench::ATAX2_SRC,
        workloads::pagerank::PAGERANK_SRC,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes, lossily decoded: the lexer sees every kind of
    /// garbage, including replacement characters and control bytes.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert!(compiles_without_panicking(&src));
    }

    /// Arbitrary unicode scalar values (biased towards ASCII).
    #[test]
    fn char_soup_never_panics(chars in prop::collection::vec(any::<char>(), 0..1024)) {
        let src: String = chars.into_iter().collect();
        prop_assert!(compiles_without_panicking(&src));
    }

    /// OpenCL-ish token soup: syntactically plausible streams that get past
    /// the lexer and stress the parser's recovery paths.
    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(token(), 0..256)) {
        let src = tokens.join(" ");
        prop_assert!(compiles_without_panicking(&src));
    }

    /// Truncate a real kernel at an arbitrary character boundary: the
    /// parser hits EOF in every possible state.
    #[test]
    fn truncated_kernels_never_panic(pick in 0usize..4, cut in 0usize..4096) {
        let src = corpus()[pick];
        let truncated = &src[..char_boundary(src, cut)];
        prop_assert!(compiles_without_panicking(truncated));
    }

    /// Splice a random character into a real kernel.
    #[test]
    fn spliced_kernels_never_panic(pick in 0usize..4, at in 0usize..4096, c in any::<char>()) {
        let src = corpus()[pick];
        let i = char_boundary(src, at);
        let mutated = format!("{}{}{}", &src[..i], c, &src[i..]);
        prop_assert!(compiles_without_panicking(&mutated));
    }

    /// Delete a random span from a real kernel (unbalances braces,
    /// removes type names mid-declaration, ...).
    #[test]
    fn deleted_spans_never_panic(pick in 0usize..4, at in 0usize..4096, len in 1usize..64) {
        let src = corpus()[pick];
        let start = char_boundary(src, at);
        let end = char_boundary(src, (start + len).min(src.len()));
        let mutated = format!("{}{}", &src[..start], &src[end..]);
        prop_assert!(compiles_without_panicking(&mutated));
    }
}

/// One plausible OpenCL token.
fn token() -> BoxedStrategy<&'static str> {
    let toks: &[&'static str] = &[
        "__kernel", "void", "int", "float", "__global", "__local", "const",
        "if", "else", "for", "while", "do", "return", "break", "continue",
        "get_global_id", "get_local_id", "get_group_id", "get_local_size",
        "(", ")", "{", "}", "[", "]", ";", ",", "=", "+", "-", "*", "/", "%",
        "<", ">", "<=", ">=", "==", "!=", "&&", "||", "!", "&", "|", "^",
        "0", "1", "42", "3.14f", "0x10", "a", "b", "i", "j", "n", "tmp",
        "\"unterminated", "/* open comment", "//", "#", "@", "$", "\\",
    ];
    proptest::strategy::Union::new(toks.iter().map(|t| Just(*t).boxed()).collect()).boxed()
}

/// Sanity anchor: the corpus itself still compiles cleanly, so the fuzz
/// targets above are mutating genuinely valid inputs.
#[test]
fn corpus_is_valid() {
    for src in corpus() {
        assert!(clc::compile(src).is_ok());
    }
}
