//! Property-based invariants of the simulator's core: the discrete-event
//! co-execution engine and the device cost model. These are the components
//! every experiment number flows through, so their invariants get
//! adversarial coverage beyond the unit tests.

use proptest::prelude::*;
use sim::cost::{cpu_group_cost, gpu_group_cost, GroupCost, ModelConstants};
use sim::des::{run_des, run_des_supervised, DesInput, GpuAgentParams, Schedule};
use sim::profile::{AccessClass, KernelProfile, SiteProfile};
use sim::{CoreSlowdown, CoreStall, FaultPlan, NdRange, PlatformConfig};

// ---------------------------------------------------------------------------
// DES invariants
// ---------------------------------------------------------------------------

fn arb_cost() -> impl Strategy<Value = GroupCost> {
    (1e-6f64..1e-2, 0.0f64..1e7, 1.0f64..20.0, 0.4f64..=1.0).prop_map(
        |(compute_s, dram_bytes, bw_cap_gbs, dram_efficiency)| GroupCost {
            compute_s,
            dram_bytes,
            bw_cap_gbs,
            dram_efficiency,
        },
    )
}

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        (2usize..50).prop_map(|d| Schedule::Dynamic { chunk_divisor: d }),
        (0.0f64..=1.0).prop_map(|f| Schedule::Static { cpu_fraction: f }),
        Just(Schedule::DynamicPull),
    ]
}

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        prop_oneof![Just(None), (0usize..4).prop_map(Some)],
        prop::collection::vec(
            (0usize..6, 0.0f64..2e-3).prop_map(|(core, at_s)| CoreStall { core, at_s }),
            0..3,
        ),
        prop::collection::vec(
            (0usize..6, 1.0f64..6.0).prop_map(|(core, factor)| CoreSlowdown { core, factor }),
            0..3,
        ),
        prop_oneof![Just(None), (1e-4f64..1e-1).prop_map(Some)],
    )
        .prop_map(|(hang, stalls, slowdowns, watchdog)| FaultPlan {
            gpu_hang_at_dispatch: hang,
            core_stalls: stalls,
            core_slowdowns: slowdowns,
            transient_profile_failures: 0,
            watchdog_timeout_s: watchdog,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation: every work-group is executed exactly once, by exactly
    /// one device, under every schedule and device mix.
    #[test]
    fn des_conserves_work(
        num_groups in 0usize..300,
        cpu_cores in 0usize..6,
        cpu_cost in arb_cost(),
        gpu_cost in arb_cost(),
        cus in 1usize..16,
        latency in 0.0f64..1e-3,
        with_gpu in any::<bool>(),
        schedule in arb_schedule(),
        bw in 5.0f64..40.0,
    ) {
        prop_assume!(cpu_cores > 0 || with_gpu);
        let input = DesInput {
            num_groups,
            cpu_cores,
            cpu_cost: if cpu_cores > 0 { Some(cpu_cost) } else { None },
            gpu: if with_gpu {
                Some(GpuAgentParams { cost: gpu_cost, cus, launch_latency_s: latency })
            } else {
                None
            },
            schedule,
            dram_bw_gbs: bw,
        };
        let r = run_des(&input);
        prop_assert_eq!(r.cpu_groups + r.gpu_groups, num_groups);
        prop_assert!(r.time_s.is_finite() && r.time_s >= 0.0);
        prop_assert!(r.dram_bytes >= 0.0);
    }

    /// A lower bound: the makespan can never beat perfect parallelism over
    /// aggregate compute capacity, nor perfect bandwidth over the bus.
    #[test]
    fn des_makespan_lower_bound(
        num_groups in 1usize..200,
        cpu_cores in 1usize..5,
        cpu_cost in arb_cost(),
        bw in 5.0f64..40.0,
    ) {
        let input = DesInput {
            num_groups,
            cpu_cores,
            cpu_cost: Some(cpu_cost),
            gpu: None,
            schedule: Schedule::Dynamic { chunk_divisor: 10 },
            dram_bw_gbs: bw,
        };
        let r = run_des(&input);
        let compute_bound =
            num_groups as f64 * cpu_cost.compute_s / cpu_cores as f64;
        let bytes_total = num_groups as f64 * cpu_cost.dram_bytes;
        let mem_bound = bytes_total / (bw * 1e9);
        prop_assert!(
            r.time_s + 1e-12 >= compute_bound.max(mem_bound) * 0.999,
            "time {} below bounds c={} m={}",
            r.time_s,
            compute_bound,
            mem_bound
        );
        // And an upper bound: never worse than fully serial on one core at
        // its achievable rate (its own cap or the bus, whichever binds).
        let rate = (cpu_cost.bw_cap_gbs * cpu_cost.dram_efficiency).min(bw) * 1e9;
        let serial =
            num_groups as f64 * cpu_cost.compute_s.max(cpu_cost.dram_bytes / rate);
        prop_assert!(r.time_s <= serial * 1.001 + 1e-12, "time {} > serial {}", r.time_s, serial);
    }

    /// Monotonicity: adding CPU cores never slows a *compute-bound*
    /// dynamic run down. (Memory-bound runs can legitimately regress by up
    /// to one group latency: with more cores each core's bandwidth share
    /// shrinks, so per-group latency grows, and the makespan is quantized
    /// in rounds of that latency — a real property of shared-bus systems,
    /// found by an earlier, stronger version of this test.)
    #[test]
    fn des_more_cores_never_hurt(
        num_groups in 1usize..200,
        cpu_cost in arb_cost(),
        bw in 5.0f64..40.0,
        cores in 1usize..4,
    ) {
        let time_with = |c: usize, bytes: f64| {
            run_des(&DesInput {
                num_groups,
                cpu_cores: c,
                cpu_cost: Some(GroupCost { dram_bytes: bytes, ..cpu_cost }),
                gpu: None,
                schedule: Schedule::Dynamic { chunk_divisor: 10 },
                dram_bw_gbs: bw,
            })
            .time_s
        };
        // Compute-bound: strict monotonicity.
        prop_assert!(time_with(cores + 1, 0.0) <= time_with(cores, 0.0) * 1.001);
        // Memory-bound: bounded by one per-group latency at the reduced
        // share (bw split c+1 ways, floored by the per-core cap).
        let share = (bw / (cores + 1) as f64)
            .min(cpu_cost.bw_cap_gbs * cpu_cost.dram_efficiency);
        let group_latency =
            cpu_cost.compute_s.max(cpu_cost.dram_bytes / (share * 1e9));
        prop_assert!(
            time_with(cores + 1, cpu_cost.dram_bytes)
                <= time_with(cores, cpu_cost.dram_bytes) + group_latency * 1.001 + 1e-12
        );
    }

    /// Conservation under arbitrary fault plans and deadlines: every
    /// work-group lands in exactly one of the five buckets — done on the
    /// CPU, done on the GPU, watchdog-recovered, deadline-redispatched, or
    /// lost — whatever breaks and whenever the deadline fires. And the
    /// supervised DES stays deterministic.
    #[test]
    fn supervised_des_conserves_work_under_faults(
        num_groups in 0usize..300,
        cpu_cores in 0usize..6,
        cpu_cost in arb_cost(),
        gpu_cost in arb_cost(),
        with_gpu in any::<bool>(),
        schedule in arb_schedule(),
        plan in arb_fault_plan(),
        deadline in prop_oneof![Just(None), (1e-5f64..1e-2).prop_map(Some)],
        bw in 5.0f64..40.0,
    ) {
        prop_assume!(cpu_cores > 0 || with_gpu);
        let input = DesInput {
            num_groups,
            cpu_cores,
            cpu_cost: if cpu_cores > 0 { Some(cpu_cost) } else { None },
            gpu: if with_gpu {
                Some(GpuAgentParams { cost: gpu_cost, cus: 8, launch_latency_s: 1e-5 })
            } else {
                None
            },
            schedule,
            dram_bw_gbs: bw,
        };
        let r = run_des_supervised(&input, &plan, deadline);
        prop_assert_eq!(
            r.cpu_groups + r.gpu_groups + r.recovered_groups + r.redispatched_groups
                + r.lost_groups,
            num_groups,
            "buckets must partition the launch: {:?}",
            r
        );
        prop_assert!(r.time_s.is_finite() && r.time_s >= 0.0);
        prop_assert!(r.dram_bytes >= 0.0);
        let again = run_des_supervised(&input, &plan, deadline);
        prop_assert_eq!(r, again);
    }

    /// Determinism: identical inputs give bit-identical reports.
    #[test]
    fn des_is_deterministic(
        num_groups in 0usize..200,
        cpu_cores in 1usize..5,
        cpu_cost in arb_cost(),
        gpu_cost in arb_cost(),
        schedule in arb_schedule(),
    ) {
        let input = DesInput {
            num_groups,
            cpu_cores,
            cpu_cost: Some(cpu_cost),
            gpu: Some(GpuAgentParams { cost: gpu_cost, cus: 8, launch_latency_s: 1e-5 }),
            schedule,
            dram_bw_gbs: 15.0,
        };
        prop_assert_eq!(run_des(&input), run_des(&input));
    }
}

// ---------------------------------------------------------------------------
// Cost-model invariants
// ---------------------------------------------------------------------------

fn arb_site() -> impl Strategy<Value = SiteProfile> {
    (
        prop_oneof![
            Just(AccessClass::Constant),
            Just(AccessClass::Continuous),
            (2i64..10000).prop_map(AccessClass::Stride),
            Just(AccessClass::Random),
        ],
        any::<bool>(),
        prop_oneof![Just(4usize), Just(8)],
        1.0f64..20000.0,
        prop_oneof![
            Just(None),
            Just(Some(0i64)),
            Just(Some(1i64)),
            (2i64..20000).prop_map(Some)
        ],
        1usize..100_000_000,
    )
        .prop_map(|(class, is_store, elem_bytes, accesses, cross, buffer_elems)| SiteProfile {
            class,
            is_store,
            elem_bytes,
            accesses_per_item: accesses,
            cross_item_delta: cross,
            buffer_elems,
        })
}

fn arb_profile() -> impl Strategy<Value = KernelProfile> {
    (
        prop::collection::vec(arb_site(), 1..6),
        0.0f64..50000.0,
        0.0f64..50000.0,
        1.0f64..8.0,
    )
        .prop_map(|(sites, flops, iops, divergence)| KernelProfile {
            flops_per_item: flops,
            iops_per_item: iops,
            divergence,
            sites,
            items_sampled: 12,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// GPU costs are finite and sane for any profile, and DRAM traffic is
    /// monotone non-decreasing in active threads for profiles *without*
    /// broadcast sites. (Broadcast sites — every item streaming the same
    /// range — legitimately amortize with more lanes: one lockstep read
    /// serves more items, so fewer range passes per group can outweigh the
    /// falling cache-hit rate. Found by an earlier, stronger version of
    /// this test.)
    #[test]
    fn gpu_cost_sane_and_traffic_monotone(profile in arb_profile()) {
        let plat = PlatformConfig::kaveri();
        let consts = ModelConstants::default();
        let nd = NdRange::d1(16384, 256);
        let has_broadcast = profile
            .sites
            .iter()
            .any(|s| s.cross_item_delta == Some(0) && s.accesses_per_item > 1.5);
        let mut last_bytes = 0.0f64;
        for g in 1..=8 {
            let c = gpu_group_cost(&profile, &nd, &plat, &consts, g as f64 / 8.0, true);
            prop_assert!(c.compute_s.is_finite() && c.compute_s > 0.0);
            prop_assert!(c.dram_bytes.is_finite() && c.dram_bytes >= 0.0);
            prop_assert!(c.bw_cap_gbs > 0.0 && c.bw_cap_gbs <= plat.mem.dram_bw_gbs);
            prop_assert!((0.0..=1.0).contains(&c.dram_efficiency));
            if !has_broadcast {
                prop_assert!(
                    c.dram_bytes >= last_bytes * 0.999,
                    "traffic dipped at g={}: {} < {}",
                    g,
                    c.dram_bytes,
                    last_bytes
                );
            }
            last_bytes = c.dram_bytes;
        }
    }

    /// Throttling trades compute for cache headroom: compute time is
    /// monotone non-increasing in active lanes.
    #[test]
    fn gpu_compute_monotone_in_lanes(profile in arb_profile()) {
        let plat = PlatformConfig::kaveri();
        let consts = ModelConstants::default();
        let nd = NdRange::d1(16384, 256);
        let mut last = f64::INFINITY;
        for g in 1..=8 {
            let c = gpu_group_cost(&profile, &nd, &plat, &consts, g as f64 / 8.0, true);
            prop_assert!(c.compute_s <= last * 1.001);
            last = c.compute_s;
        }
    }

    /// CPU costs are finite and the divergence factor never affects them
    /// (CPUs pay mean work, not lockstep max).
    #[test]
    fn cpu_cost_ignores_divergence(mut profile in arb_profile()) {
        let plat = PlatformConfig::kaveri();
        let consts = ModelConstants::default();
        let nd = NdRange::d1(16384, 256);
        profile.divergence = 1.0;
        let a = cpu_group_cost(&profile, &nd, &plat, &consts);
        profile.divergence = 8.0;
        let b = cpu_group_cost(&profile, &nd, &plat, &consts);
        prop_assert_eq!(a, b);
        prop_assert!(a.compute_s.is_finite() && a.compute_s > 0.0);
        prop_assert!(a.dram_bytes.is_finite() && a.dram_bytes >= 0.0);
    }

    /// Divergence slows the GPU proportionally (lockstep pays the max).
    #[test]
    fn gpu_divergence_scales_compute(mut profile in arb_profile()) {
        prop_assume!(profile.flops_per_item + profile.iops_per_item > 1.0);
        let plat = PlatformConfig::kaveri();
        let consts = ModelConstants::default();
        let nd = NdRange::d1(16384, 256);
        profile.divergence = 1.0;
        let base = gpu_group_cost(&profile, &nd, &plat, &consts, 1.0, false).compute_s;
        profile.divergence = 4.0;
        let diverged = gpu_group_cost(&profile, &nd, &plat, &consts, 1.0, false).compute_s;
        prop_assert!(diverged > base * 1.5, "diverged {} vs base {}", diverged, base);
    }
}
