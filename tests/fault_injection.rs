//! End-to-end fault-injection acceptance tests: a launch the remaining
//! hardware could still finish never fails, and everything the runtime
//! absorbs is visible in the health counters.

use dopia::ml::Regressor;
use dopia::prelude::*;

/// A regressor that always prefers full co-execution (max CPU + max GPU):
/// deterministic selections with CPU survivors for the hang tests.
struct CoExec;

impl Regressor for CoExec {
    fn predict(&self, row: &[f64]) -> f64 {
        // row[9] = cpu_util, row[10] = gpu_util (Table 1 order).
        0.6 * row[9] + 0.4 * row[10]
    }
    fn name(&self) -> &'static str {
        "coexec"
    }
}

/// A regressor gone numerically wrong.
struct Broken(f64);

impl Regressor for Broken {
    fn predict(&self, _row: &[f64]) -> f64 {
        self.0
    }
    fn name(&self) -> &'static str {
        "broken"
    }
}

fn coexec_dopia() -> Dopia {
    Dopia::new(Engine::kaveri(), PerfModel::from_regressor(ModelKind::Lin, Box::new(CoExec)))
}

fn gesummv_launch(dopia: &Dopia, n: usize) -> (Program, Memory, Vec<ArgValue>, NdRange) {
    let program = dopia
        .create_program_with_source(workloads::polybench::GESUMMV_SRC)
        .unwrap();
    let mut mem = Memory::new();
    let built = workloads::polybench::gesummv(&mut mem, n, 256);
    (program, mem, built.args, built.nd)
}

/// The tentpole acceptance scenario: the GPU hangs on its very first chunk
/// dispatch under dynamic distribution. The watchdog reclaims the chunk,
/// the CPU cores finish it, and the launch completes — every work-group
/// accounted for, the degradation visible in the report and health.
#[test]
fn gpu_hang_under_dynamic_completes_via_watchdog() {
    let mut dopia = coexec_dopia();
    dopia.set_fault_plan(FaultPlan {
        gpu_hang_at_dispatch: Some(0),
        ..FaultPlan::default()
    });
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);
    let r = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();

    // Full co-execution was selected, so CPU survivors exist.
    assert!(r.selection.point.cpu_cores > 0, "{:?}", r.selection.point);
    // Nothing is lost: every group ran somewhere.
    assert_eq!(
        r.report.cpu_groups + r.report.gpu_groups + r.report.recovered_groups,
        nd.num_groups(),
        "{:?}",
        r.report
    );
    assert_eq!(r.report.lost_groups, 0);
    assert!(r.report.recovered_groups > 0, "{:?}", r.report);
    assert!(r.report.degraded);
    assert!(r.report.watchdog_fires >= 1);
    assert_eq!(r.health.watchdog_recoveries, r.report.watchdog_fires);
    assert!(!r.health.is_nominal());
    assert!(r.report.time_s.is_finite() && r.report.time_s > 0.0);
}

/// A later hang (the GPU's second chunk dispatch) loses less GPU work
/// but must still balance the books.
#[test]
fn late_gpu_hang_still_accounts_for_every_group() {
    let mut dopia = coexec_dopia();
    dopia.set_fault_plan(FaultPlan {
        gpu_hang_at_dispatch: Some(1),
        ..FaultPlan::default()
    });
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 16384);
    let r = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert_eq!(
        r.report.cpu_groups + r.report.gpu_groups + r.report.recovered_groups,
        nd.num_groups()
    );
    assert!(r.report.gpu_groups > 0, "two dispatches completed first: {:?}", r.report);
    assert!(r.report.degraded);
}

/// A stalled CPU core's in-flight group is reclaimed and finished
/// elsewhere; a slowed core is a performance fault only.
#[test]
fn core_stall_and_slowdown_are_survivable() {
    let mut dopia = coexec_dopia();
    dopia.set_fault_plan(FaultPlan {
        core_stalls: vec![CoreStall { core: 0, at_s: 0.0 }],
        core_slowdowns: vec![CoreSlowdown { core: 1, factor: 4.0 }],
        ..FaultPlan::default()
    });
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 16384);
    let r = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert_eq!(
        r.report.cpu_groups + r.report.gpu_groups + r.report.recovered_groups,
        nd.num_groups()
    );
    assert_eq!(r.report.lost_groups, 0);
    assert!(r.report.degraded, "a dead core marks the run degraded");
}

/// A model predicting garbage steers nothing: the launch falls back to
/// the GPU-only heuristic and flags it.
#[test]
fn nan_model_falls_back_to_gpu_only_heuristic() {
    for bad in [f64::NAN, f64::INFINITY, -1.0] {
        let dopia = Dopia::new(
            Engine::kaveri(),
            PerfModel::from_regressor(ModelKind::Lin, Box::new(Broken(bad))),
        );
        let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);
        let r = dopia
            .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
            .unwrap();
        assert!(r.selection.fallback, "pred {}", bad);
        assert!(r.selection.predicted.is_nan());
        assert_eq!(r.selection.point.cpu_cores, 0);
        assert_eq!(r.selection.point.gpu_eighths, 8);
        assert_eq!(r.health.prediction_fallbacks, 1);
        assert_eq!(r.report.cpu_groups + r.report.gpu_groups, nd.num_groups());
    }
}

/// One untransformable kernel must not fail the whole program: it is
/// marked degraded and runs GPU-original-only, while its siblings stay
/// fully managed.
#[test]
fn mixed_program_degrades_only_the_untransformable_kernel() {
    let dopia = coexec_dopia();
    let src = format!(
        "{}\n__kernel void tricky(__global float* a, int d) {{
             a[get_global_id(d)] = 1.0f;
         }}",
        workloads::polybench::GESUMMV_SRC
    );
    let program = dopia.create_program_with_source(&src).unwrap();
    assert_eq!(program.kernels.len(), 2);

    let good = program.kernel("gesummv").unwrap();
    assert!(!good.is_degraded());
    assert!(good.malleable(1).is_some());

    let tricky = program.kernel("tricky").unwrap();
    assert!(tricky.is_degraded());
    assert!(tricky.malleable(1).is_none());
    assert!(matches!(tricky.degraded_mode, DegradedMode::GpuOriginalOnly { .. }));

    // The degraded kernel still launches — GPU only, no model sweep.
    let mut mem = Memory::new();
    let a = mem.alloc_f32(vec![0.0; 1024]);
    let r = dopia
        .enqueue_nd_range_kernel(
            &program,
            "tricky",
            &[ArgValue::Buffer(a), ArgValue::Int(0)],
            NdRange::d1(1024, 256),
            &mut mem,
        )
        .unwrap();
    assert_eq!(r.health.degraded_launches, 1);
    assert!(r.selection.fallback);
    assert_eq!(r.report.cpu_groups, 0);
    assert_eq!(r.report.gpu_groups, 4);

    // And the managed sibling is unaffected.
    let mut mem2 = Memory::new();
    let built = workloads::polybench::gesummv(&mut mem2, 4096, 256);
    let r2 = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &built.args, built.nd, &mut mem2)
        .unwrap();
    assert_eq!(r2.health.degraded_launches, 0);
    assert!(!r2.selection.fallback);
}

/// Injected transient profiling failures are absorbed by the queue's
/// bounded retry; the backoff is charged to the launch and the retries
/// surface in the health counters.
#[test]
fn transient_profile_failures_absorbed_by_queue_retry() {
    let mut dopia = coexec_dopia();
    dopia.set_fault_plan(FaultPlan {
        transient_profile_failures: 2,
        ..FaultPlan::default()
    });
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);
    let mut queue = CommandQueue::new(&dopia);
    let event = queue
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert_eq!(event.result.health.transient_retries, 2);
    let expected_backoff = 1e-4 + 2e-4; // doubling backoff, two retries
    let overhead = event.result.total_time_s
        - event.result.kernel_time_s
        - event.result.selection.inference_s;
    assert!((overhead - expected_backoff).abs() < 1e-9, "overhead {}", overhead);

    let summary = queue.finish();
    assert_eq!(summary.health.transient_retries, 2);
    assert!(!summary.health.is_nominal());
}

/// More transient failures than the retry budget: the error finally
/// surfaces, still marked transient, and no event is recorded.
#[test]
fn transient_failures_beyond_retry_budget_surface() {
    let mut dopia = coexec_dopia();
    dopia.set_fault_plan(FaultPlan {
        transient_profile_failures: 10,
        ..FaultPlan::default()
    });
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);
    let mut queue = CommandQueue::new(&dopia);
    let err = queue
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap_err();
    assert!(err.is_transient());
    assert!(queue.events().is_empty());
    // Budget: 1 initial attempt + 3 retries consumed 4 injected failures.
    assert_eq!(dopia.fault_plan().unwrap().transient_profile_failures, 10);
}

/// Clearing the fault plan restores nominal behavior on the same runtime.
#[test]
fn clearing_the_fault_plan_restores_nominal_launches() {
    let mut dopia = coexec_dopia();
    dopia.set_fault_plan(FaultPlan {
        gpu_hang_at_dispatch: Some(0),
        ..FaultPlan::default()
    });
    dopia.clear_fault_plan();
    assert!(dopia.fault_plan().is_none());
    let (program, mut mem, args, nd) = gesummv_launch(&dopia, 4096);
    let r = dopia
        .enqueue_nd_range_kernel(&program, "gesummv", &args, nd, &mut mem)
        .unwrap();
    assert!(!r.report.degraded);
    assert_eq!(r.report.recovered_groups, 0);
    assert_eq!(r.report.watchdog_fires, 0);
    assert!(r.health.is_nominal());
    assert_eq!(r.report.cpu_groups + r.report.gpu_groups, nd.num_groups());
}
